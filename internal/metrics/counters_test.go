package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFleetCountersConcurrentUpdates(t *testing.T) {
	var c FleetCounters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.DevicesEnrolled.Add(1)
				c.PairsKept.Add(3)
				c.PairsRejected.Add(1)
				c.AddStageTime("enroll", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := c.DevicesEnrolled.Load(); got != 800 {
		t.Fatalf("DevicesEnrolled = %d, want 800", got)
	}
	if got := c.PairsKept.Load(); got != 2400 {
		t.Fatalf("PairsKept = %d, want 2400", got)
	}
	if got := c.StageTime("enroll"); got != 800*time.Millisecond {
		t.Fatalf("StageTime(enroll) = %v, want 800ms", got)
	}
}

func TestFleetCountersStagesSorted(t *testing.T) {
	var c FleetCounters
	c.AddStageTime("evaluate", time.Second)
	c.AddStageTime("enroll", time.Second)
	got := c.Stages()
	if len(got) != 2 || got[0] != "enroll" || got[1] != "evaluate" {
		t.Fatalf("Stages() = %v, want [enroll evaluate]", got)
	}
	if c.StageTime("missing") != 0 {
		t.Fatal("unknown stage should report zero time")
	}
}

func TestFleetCountersString(t *testing.T) {
	var c FleetCounters
	c.DevicesEnrolled.Add(5)
	c.DevicesFailed.Add(1)
	c.PairsKept.Add(100)
	c.PairsRejected.Add(20)
	s := c.String()
	for _, want := range []string{"5 enrolled", "1 failed", "100 kept", "20 rejected"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "evals") {
		t.Errorf("String() = %q mentions evals with none recorded", s)
	}
	c.Evaluations.Add(7)
	c.BitFlips.Add(2)
	if s := c.String(); !strings.Contains(s, "7 ok") || !strings.Contains(s, "2 bit flips") {
		t.Errorf("String() = %q missing eval summary", s)
	}
}
