package audit

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	w, f, err := OpenFile(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := []Event{
		{Event: EventEnroll, DeviceID: "dev-0001", TraceID: "0123456789abcdef0123456789abcdef"},
		{Event: EventVerifyFail, DeviceID: "dev-0001", Reason: "mismatch",
			Detail: map[string]float64{"distance": 12, "limit": 6}},
		{Event: EventFlag, DeviceID: "dev-0002", Reason: "harvest",
			Detail: map[string]float64{"challenge_rate": 40, "fleet_median_rate": 1}},
	}
	for _, ev := range want {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := w.Emitted(), int64(3); got != want {
		t.Fatalf("Emitted = %d, want %d", got, want)
	}
	if got := w.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}

	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want) {
		t.Fatalf("read %d events, want %d", len(events), len(want))
	}
	for i, ev := range events {
		if ev.TS.IsZero() {
			t.Errorf("event %d: zero TS not stamped", i)
		}
		if ev.Event != want[i].Event || ev.DeviceID != want[i].DeviceID ||
			ev.TraceID != want[i].TraceID || ev.Reason != want[i].Reason {
			t.Errorf("event %d = %+v, want fields of %+v", i, ev, want[i])
		}
		for k, v := range want[i].Detail {
			if ev.Detail[k] != v {
				t.Errorf("event %d: detail[%s] = %g, want %g", i, k, ev.Detail[k], v)
			}
		}
	}
}

func TestWriterAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	for run := 0; run < 2; run++ {
		w, f, err := OpenFile(path, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w.Emit(Event{Event: EventEnroll, DeviceID: "dev-0000"})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("after two runs got %d events, want 2 (restart must append, not truncate)", len(events))
	}
}

// A wedged sink must not wedge Emit: events past the buffer are dropped
// and counted while every Emit returns immediately.
func TestWriterDropsWhenFull(t *testing.T) {
	block := make(chan struct{})
	w := NewWriter(blockingWriter{block}, WriterOptions{Buffer: 4})

	// First write is pulled from the channel by the drain goroutine and
	// blocks inside Write; wait until the buffer alone absorbs the rest.
	total := 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			w.Emit(Event{Event: EventChallenge, DeviceID: "dev-0000"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a wedged sink")
	}
	if w.Dropped() == 0 {
		t.Fatalf("Dropped = 0 after %d emits into a wedged 4-slot writer", total)
	}
	if w.Emitted()+w.Dropped() != int64(total) {
		t.Fatalf("Emitted %d + Dropped %d != %d", w.Emitted(), w.Dropped(), total)
	}
	close(block)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

type blockingWriter struct{ unblock chan struct{} }

func (b blockingWriter) Write(p []byte) (int, error) {
	<-b.unblock
	return len(p), nil
}

func TestWriterConcurrentEmit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	w, f, err := OpenFile(path, WriterOptions{Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	const goroutines, per = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Emit(Event{Event: EventChallenge, DeviceID: "dev-0000"})
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != w.Emitted() {
		t.Fatalf("file has %d events, writer accepted %d", len(events), w.Emitted())
	}
	if w.Emitted()+w.Dropped() != goroutines*per {
		t.Fatalf("Emitted %d + Dropped %d != %d", w.Emitted(), w.Dropped(), goroutines*per)
	}
}

func TestNilWriterNoOps(t *testing.T) {
	var w *Writer
	w.Emit(Event{Event: EventEnroll, DeviceID: "dev-0000"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Emitted() != 0 || w.Dropped() != 0 {
		t.Fatal("nil writer reported activity")
	}
}

func TestReadRejectsMalformedLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"event\":\"enroll\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("want line-2 decode error, got %v", err)
	}
}

func TestReadFiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 2; i++ {
		p := filepath.Join(dir, "a.jsonl")
		if i == 1 {
			p = filepath.Join(dir, "b.jsonl")
		}
		w, f, err := OpenFile(p, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w.Emit(Event{Event: EventEnroll, DeviceID: "dev-0000"})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, p)
	}
	events, err := ReadFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
}
