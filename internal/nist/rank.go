package nist

import (
	"fmt"

	"ropuf/internal/bits"
	"ropuf/internal/stats"
)

// rankMatrixSize is the 32×32 matrix size of the binary rank test.
const rankMatrixSize = 32

// RankTest returns the binary matrix rank test (§2.5): linear dependence
// among fixed-length substrings lowers the rank of 32×32 bit matrices.
func RankTest() Test {
	const bitsPerMatrix = rankMatrixSize * rankMatrixSize
	return Test{
		Name:    "Rank",
		MinBits: 38 * bitsPerMatrix, // spec: at least 38 matrices
		Run: func(s *bits.Stream) ([]PV, error) {
			n := s.Len()
			nMat := n / bitsPerMatrix
			if nMat == 0 {
				return nil, fmt.Errorf("%w: rank needs at least %d bits", ErrTooShort, bitsPerMatrix)
			}
			var f32, f31 int
			rows := make([]uint32, rankMatrixSize)
			for m := 0; m < nMat; m++ {
				base := m * bitsPerMatrix
				for r := 0; r < rankMatrixSize; r++ {
					var w uint32
					for c := 0; c < rankMatrixSize; c++ {
						if s.Bit(base + r*rankMatrixSize + c) {
							w |= 1 << uint(c)
						}
					}
					rows[r] = w
				}
				switch BinaryRank(rows) {
				case rankMatrixSize:
					f32++
				case rankMatrixSize - 1:
					f31++
				}
			}
			// Asymptotic category probabilities for full rank, rank m−1 and
			// the rest (spec §3.5).
			const p32, p31 = 0.2888, 0.5776
			p30 := 1 - p32 - p31
			fRest := nMat - f32 - f31
			chi2 := sq(float64(f32)-p32*float64(nMat))/(p32*float64(nMat)) +
				sq(float64(f31)-p31*float64(nMat))/(p31*float64(nMat)) +
				sq(float64(fRest)-p30*float64(nMat))/(p30*float64(nMat))
			// Two degrees of freedom: p = exp(−χ²/2) = igamc(1, χ²/2).
			return []PV{{P: stats.Igamc(1, chi2/2)}}, nil
		},
	}
}

func sq(x float64) float64 { return x * x }

// BinaryRank computes the rank over GF(2) of a square bit matrix whose rows
// are packed into uint32 words (bit c of rows[r] is element (r, c)).
func BinaryRank(rows []uint32) int {
	m := append([]uint32(nil), rows...)
	rank := 0
	for col := 0; col < rankMatrixSize && rank < len(m); col++ {
		pivot := -1
		for r := rank; r < len(m); r++ {
			if m[r]>>uint(col)&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		for r := 0; r < len(m); r++ {
			if r != rank && m[r]>>uint(col)&1 == 1 {
				m[r] ^= m[rank]
			}
		}
		rank++
	}
	return rank
}
