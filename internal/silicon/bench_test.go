package silicon

import (
	"testing"

	"ropuf/internal/rngx"
)

func BenchmarkNewDie512(b *testing.B) {
	p := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewDie(p, 16, 32, rngx.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelayPS(b *testing.B) {
	d, err := NewDie(DefaultParams(), 16, 16, rngx.New(1))
	if err != nil {
		b.Fatal(err)
	}
	env := Env{V: 1.08, T: 45}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DelayPS(i%d.NumDevices(), env)
	}
}

func BenchmarkAgedDelayPS(b *testing.B) {
	d, err := NewDie(DefaultParams(), 16, 16, rngx.New(2))
	if err != nil {
		b.Fatal(err)
	}
	stress := Aging{Years: 5, Activity: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.AgedDelayPS(i%d.NumDevices(), Nominal, stress); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvFactorUncached prices one whole-die environment-factor sweep
// computed from scratch: four math.Pow calls per device, the per-evaluation
// cost the delay-table cache eliminates.
func BenchmarkEnvFactorUncached(b *testing.B) {
	d, err := NewDie(DefaultParams(), 16, 16, rngx.New(3))
	if err != nil {
		b.Fatal(err)
	}
	env := Env{V: 1.08, T: 45}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for j := range d.Devices {
			sink += d.DelayAtUncachedPS(d.Devices[j], env)
		}
	}
	benchSink = sink
}

// BenchmarkEnvFactorCached prices the same whole-die sweep through the
// cached delay table (built once, then a slice read per device).
func BenchmarkEnvFactorCached(b *testing.B) {
	d, err := NewDie(DefaultParams(), 16, 16, rngx.New(3))
	if err != nil {
		b.Fatal(err)
	}
	env := Env{V: 1.08, T: 45}
	d.DelaysPS(env) // build outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		delays := d.DelaysPS(env)
		for _, v := range delays {
			sink += v
		}
	}
	benchSink = sink
}

// benchSink defeats dead-code elimination of the benchmark loops.
var benchSink float64
