// Command ropuf is the experiment driver: it regenerates every table and
// figure of "A Highly Flexible Ring Oscillator PUF" (DAC 2014) on the
// synthetic datasets.
//
// Usage:
//
//	ropuf [-out dir] [-parallel N] list|all|experiment <id>...|verify
//
//	ropuf list                 print available experiment IDs
//	ropuf experiment <id>...   run one or more experiments (or "all")
//	ropuf all                  shorthand for "experiment all"
//	ropuf verify               check the headline reproduction claims
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ropuf/internal/circuit"
	"ropuf/internal/experiments"
)

var (
	outDir   = flag.String("out", "", "also write each experiment report to <dir>/<id>.txt")
	parallel = flag.Int("parallel", 0, "run 'all' with N concurrent workers (0 = sequential)")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, "ropuf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  ropuf list                 print available experiment IDs
  ropuf experiment <id>...   run experiments by ID (or "all")
  ropuf all                  run every experiment
  ropuf verify               check the headline reproduction claims (CI gate)
  ropuf rtl [stages]         emit the Fig. 1 architecture as Verilog (default 5 stages)
`)
}

func run(args []string) error {
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "all":
		return runExperiments([]string{"all"})
	case "experiment", "exp":
		if len(args) < 2 {
			return fmt.Errorf("experiment requires at least one ID (try 'ropuf list')")
		}
		return runExperiments(args[1:])
	case "verify":
		return runVerify()
	case "rtl":
		return runRTL(args[1:])
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// runRTL emits the Fig. 1 architecture as synthesizable Verilog:
// "ropuf rtl [stages]" (default 5 stages) writes a configurable-RO PUF pair
// module to stdout.
func runRTL(args []string) error {
	stages := 5
	if len(args) > 0 {
		if _, err := fmt.Sscanf(args[0], "%d", &stages); err != nil {
			return fmt.Errorf("rtl: stage count %q: %w", args[0], err)
		}
	}
	return circuit.WriteVerilogPair(os.Stdout, fmt.Sprintf("cro_puf_pair_n%d", stages), stages, 16)
}

func runVerify() error {
	checks, err := experiments.NewRunner().Verify()
	if err != nil {
		return err
	}
	failed := 0
	for _, c := range checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-42s %s\n", mark, c.Name, c.Got)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d reproduction checks failed", failed, len(checks))
	}
	fmt.Printf("all %d reproduction checks passed\n", len(checks))
	return nil
}

func runExperiments(ids []string) error {
	r := experiments.NewRunner()
	all := len(ids) == 1 && ids[0] == "all"
	if all {
		ids = experiments.IDs()
	}
	var results []*experiments.Result
	if all && *parallel != 0 {
		rs, err := r.RunAllParallel(*parallel)
		if err != nil {
			return err
		}
		results = rs
	} else {
		for _, id := range ids {
			res, err := r.Run(id)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
	}
	for _, res := range results {
		fmt.Println(res.Text)
		if err := writeReport(res); err != nil {
			return err
		}
	}
	return nil
}

// writeReport persists one experiment's text when -out is set.
func writeReport(res *experiments.Result) error {
	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(*outDir, res.ID+".txt")
	return os.WriteFile(path, []byte(res.Text), 0o644)
}
