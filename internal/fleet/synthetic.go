package fleet

import (
	"fmt"

	"ropuf/internal/core"
	"ropuf/internal/rngx"
)

// Synthetic fabricates a deterministic fleet of devices with per-stage
// delay vectors drawn from the same regime as the in-house dataset
// (~200 ps stage delays with ~5 ps process spread). Device d's
// measurements depend only on (seed, d), so fleets are reproducible and
// individual devices can be re-fabricated in isolation.
func Synthetic(numDevices, pairsPerDevice, stages int, seed uint64) ([]Device, error) {
	if numDevices <= 0 || pairsPerDevice <= 0 || stages <= 0 {
		return nil, fmt.Errorf("fleet: Synthetic(%d devices, %d pairs, %d stages): all must be positive",
			numDevices, pairsPerDevice, stages)
	}
	devices := make([]Device, numDevices)
	// Per-pair draws are interleaved (α₀, β₀, α₁, β₁, …) for historical
	// stream compatibility: batch-drawing into buf and de-interleaving
	// consumes the RNG in exactly that order, so fabricated fleets are
	// bit-identical to the scalar loop this replaces while each device
	// costs two allocations instead of two per pair.
	buf := make([]float64, 2*stages)
	for d := range devices {
		r := deviceRNG(seed, d)
		pairs := make([]core.Pair, pairsPerDevice)
		backing := make([]float64, 2*stages*pairsPerDevice)
		for p := range pairs {
			r.NormFill(buf, 200, 5)
			alpha := backing[2*stages*p : 2*stages*p+stages : 2*stages*p+stages]
			beta := backing[2*stages*p+stages : 2*stages*(p+1) : 2*stages*(p+1)]
			for s := 0; s < stages; s++ {
				alpha[s] = buf[2*s]
				beta[s] = buf[2*s+1]
			}
			pairs[p] = core.Pair{Alpha: alpha, Beta: beta}
		}
		devices[d] = Device{ID: fmt.Sprintf("dev-%04d", d), Pairs: pairs}
	}
	return devices, nil
}

// Remeasure returns a fresh noisy measurement of a device's pairs: every
// stage delay is perturbed by zero-mean Gaussian noise of sigmaPS
// picoseconds RMS, modeling measurement error and environmental drift
// between enrollment and a later authentication.
func Remeasure(d Device, sigmaPS float64, seed uint64) []core.Pair {
	r := rngx.New(seed).Split()
	out := make([]core.Pair, len(d.Pairs))
	total := 0
	for _, pair := range d.Pairs {
		total += len(pair.Alpha) + len(pair.Beta)
	}
	// One backing array for the whole device; each pair's vectors are
	// carved from it with full-slice expressions so they stay independent.
	backing := make([]float64, total)
	next := 0
	carve := func(n int) []float64 {
		s := backing[next : next+n : next+n]
		next += n
		return s
	}
	for p, pair := range d.Pairs {
		alpha := carve(len(pair.Alpha))
		beta := carve(len(pair.Beta))
		// NormFill draws σ·N(0,1) perturbations in the same stream order as
		// the per-element scalar calls it replaces; adding the enrolled
		// value afterwards keeps the result bit-identical.
		r.NormFill(alpha, 0, sigmaPS)
		for i, v := range pair.Alpha {
			alpha[i] += v
		}
		r.NormFill(beta, 0, sigmaPS)
		for i, v := range pair.Beta {
			beta[i] += v
		}
		out[p] = core.Pair{Alpha: alpha, Beta: beta}
	}
	return out
}

// deviceRNG derives an independent deterministic stream for one device.
func deviceRNG(seed uint64, device int) *rngx.RNG {
	// Mix the device index in with a large odd multiplier so nearby
	// devices land in unrelated regions of the seed space.
	return rngx.New(seed + 0x9e3779b97f4a7c15*uint64(device+1))
}
