package experiments

// Second extension group: hardware-utilization comparison including the
// temperature-aware cooperative baseline (the paper's reference [2]),
// distiller diagnostics (spatial autocorrelation + degree ablation), and
// an aging study.

import (
	"fmt"
	"strings"

	"ropuf/internal/baseline"
	"ropuf/internal/bits"
	"ropuf/internal/circuit"
	"ropuf/internal/core"
	"ropuf/internal/dataset"
	"ropuf/internal/distill"
	"ropuf/internal/nist"
	"ropuf/internal/silicon"
)

// Utilization compares how many reliable bits each scheme extracts from
// the same 512-RO budget on the environment boards: configurable (margin
// masking), traditional with a worst-case threshold, cooperative
// (multi-corner enrollment) and 1-out-of-8.
func (r *Runner) Utilization() (*Result, error) {
	ds, err := r.VT()
	if err != nil {
		return nil, err
	}
	title := "Hardware utilization — reliable bits per 512-RO budget (n=5 rings)"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	env := ds.EnvBoards()
	sweep := dataset.VoltageSweep()
	const n = 5
	type row struct {
		name  string
		bits  float64
		flips float64
	}
	var rows []row
	boards := 0

	addRow := func(name string, bitsPerBoard, flipsPct float64) {
		for i := range rows {
			if rows[i].name == name {
				rows[i].bits += bitsPerBoard
				rows[i].flips += flipsPct
				return
			}
		}
		rows = append(rows, row{name, bitsPerBoard, flipsPct})
	}

	for _, board := range env {
		boards++
		nominal, err := board.PeriodsPS(dataset.NominalCondition)
		if err != nil {
			return nil, err
		}
		numPairs, _, err := dataset.GroupBitsPerBoard(len(nominal), n)
		if err != nil {
			return nil, err
		}
		budget := 2 * n * numPairs

		cornerDelays := make([][]float64, 0, len(sweep))
		cornerDelays = append(cornerDelays, nominal[:budget])
		for _, c := range sweep {
			if c == dataset.NominalCondition {
				continue
			}
			d, err := board.PeriodsPS(c)
			if err != nil {
				return nil, err
			}
			cornerDelays = append(cornerDelays, d[:budget])
		}
		evalFlips := func(enrolled *bits.Stream, eval func([]float64) (*bits.Stream, error)) (float64, error) {
			flipped := make([]bool, enrolled.Len())
			for _, d := range cornerDelays[1:] {
				resp, err := eval(d)
				if err != nil {
					return 0, err
				}
				for i := 0; i < resp.Len(); i++ {
					if resp.Bit(i) != enrolled.Bit(i) {
						flipped[i] = true
					}
				}
			}
			c := 0
			for _, f := range flipped {
				if f {
					c++
				}
			}
			return 100 * float64(c) / float64(enrolled.Len()), nil
		}

		// Configurable Case-2 with margin masking at a threshold scaled to
		// the board's noise (60 ps, ~the voltage-induced perturbation).
		pairs, err := groupPairs(nominal, n)
		if err != nil {
			return nil, err
		}
		conf, err := core.Enroll(pairs, core.Case2, 60, core.Options{})
		if err != nil {
			return nil, err
		}
		confFlips, err := evalFlips(conf.Response, func(d []float64) (*bits.Stream, error) {
			p, err := groupPairs(d[:budget], n)
			if err != nil {
				return nil, err
			}
			// groupPairs of a prefix needs full 512; use board pairs.
			return conf.Evaluate(p)
		})
		if err != nil {
			// Fall back: evaluate on full-length pairs.
			return nil, err
		}
		addRow("configurable Case-2 (margin mask)", float64(conf.NumBits()), confFlips)

		// Traditional with a worst-case threshold chosen to match the
		// configurable bit reliability (120 ps).
		trad, err := baseline.EnrollTraditional(nominal[:budget], 120)
		if err != nil {
			return nil, err
		}
		tradFlips, err := evalFlips(trad.Response, trad.Evaluate)
		if err != nil {
			return nil, err
		}
		addRow("traditional (worst-case Rth)", float64(trad.Response.Len()), tradFlips)

		// Cooperative: multi-corner enrollment keeps stable pairs.
		coop, err := baseline.EnrollCooperative(cornerDelays)
		if err != nil {
			return nil, err
		}
		coopFlips, err := evalFlips(coop.Response, coop.Evaluate)
		if err != nil {
			return nil, err
		}
		addRow("cooperative (multi-corner, ref [2])", float64(coop.Response.Len()), coopFlips)

		// 1-out-of-8.
		oo8, err := baseline.EnrollOneOutOf8(nominal[:budget])
		if err != nil {
			return nil, err
		}
		oo8Flips, err := evalFlips(oo8.Response, oo8.Evaluate)
		if err != nil {
			return nil, err
		}
		addRow("1-out-of-8", float64(oo8.Response.Len()), oo8Flips)
	}

	const budgetROs = 480 // 2·n·48 for n = 5
	fmt.Fprintf(&b, "%d environment boards, %d-RO budget each; flips over the voltage sweep.\n\n", boards, budgetROs)
	fmt.Fprintf(&b, "%-38s %12s %12s %14s\n", "scheme", "bits/board", "flip rate", "bits/100 ROs")
	for _, row := range rows {
		perBoard := row.bits / float64(boards)
		fmt.Fprintf(&b, "%-38s %12.1f %11.2f%% %14.1f\n",
			row.name, perBoard, row.flips/float64(boards), 100*perBoard/budgetROs)
	}
	fmt.Fprintf(&b, `
Reading: with zero-flip reliability required, the contenders are the
configurable PUF, the cooperative scheme and (nearly) 1-out-of-8. The
configurable row is accounted at RO granularity (each "inverter" of a
5-stage ring is a whole RO, 10 ROs per bit) because the public-dataset
experiments must treat ROs as inverters; in the real inverter-level design
a configured ring costs roughly one RO of area, i.e. ~2 RO-equivalents per
bit — the Table V accounting under which it ties traditional and beats
1-out-of-8 by 4x. The cooperative scheme reaches the highest RO-granularity
yield but needs multi-corner enrollment measurements (in hardware,
temperature sensors — the cost the paper's approach avoids).
`)
	return &Result{ID: "utilization", Title: title, Text: b.String()}, nil
}

// Distiller regenerates the distiller's effect directly: spatial
// autocorrelation (Moran's I) of the per-RO periods before and after
// distillation, and the NIST pass count as a function of polynomial degree.
func (r *Runner) Distiller() (*Result, error) {
	ds, err := r.VT()
	if err != nil {
		return nil, err
	}
	title := "Distiller — spatial structure removal and degree ablation"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	boards := ds.NominalBoards()
	if len(boards) > numNominalBoards {
		boards = boards[:numNominalBoards]
	}

	// Moran's I on a sample of boards, raw vs degree-2 residuals.
	const neighbourRadius = 2.0
	var rawI, resI float64
	const sample = 10
	for _, board := range boards[:sample] {
		periods, err := board.PeriodsPS(dataset.NominalCondition)
		if err != nil {
			return nil, err
		}
		iRaw, err := distill.MoransI(board.X, board.Y, periods, neighbourRadius)
		if err != nil {
			return nil, err
		}
		d, err := distill.New(distillerDegree)
		if err != nil {
			return nil, err
		}
		res, err := d.Apply(board.X, board.Y, periods)
		if err != nil {
			return nil, err
		}
		iRes, err := distill.MoransI(board.X, board.Y, res, neighbourRadius)
		if err != nil {
			return nil, err
		}
		rawI += iRaw
		resI += iRes
	}
	fmt.Fprintf(&b, "Moran's I (radius %.0f, mean over %d boards): raw %.3f -> distilled %.3f\n",
		neighbourRadius, sample, rawI/sample, resI/sample)
	fmt.Fprintf(&b, "(null expectation for 512 samples: %.4f)\n\n", distill.ExpectedMoransINull(512))

	// Degree ablation: NIST pass rows per distiller degree.
	fmt.Fprintf(&b, "%-10s %18s %14s\n", "degree", "NIST rows passing", "all pass?")
	for degree := 0; degree <= 4; degree++ {
		streams, err := streamsWithDegree(ds, degree)
		if err != nil {
			return nil, err
		}
		rep, err := nist.RunReport(streams, nist.ShortSuite(streams[0].Len()))
		if err != nil {
			return nil, err
		}
		passRows := 0
		for _, row := range rep.Rows {
			if row.Pass >= nist.MinPassCount(row.Total) {
				passRows++
			}
		}
		fmt.Fprintf(&b, "%-10d %13d of %2d %14v\n", degree, passRows, len(rep.Rows), rep.AllPass())
	}
	fmt.Fprintf(&b, "\nReading: the raw data's spatial autocorrelation is what fails NIST; a\ndegree-2 surface already removes it (higher degrees buy nothing), matching\nthe regression-distiller design of the paper's reference [18].\n")
	return &Result{ID: "distiller", Title: title, Text: b.String()}, nil
}

// streamsWithDegree reproduces the Table-I stream pipeline with an explicit
// distiller degree (degree < 0 would mean raw; 0..4 fit a surface).
func streamsWithDegree(ds *dataset.Dataset, degree int) ([]*bits.Stream, error) {
	boards := ds.NominalBoards()
	if len(boards) > numNominalBoards {
		boards = boards[:numNominalBoards]
	}
	responses := make([]*bits.Stream, len(boards))
	d, err := distill.New(degree)
	if err != nil {
		return nil, err
	}
	for i, board := range boards {
		periods, err := board.PeriodsPS(dataset.NominalCondition)
		if err != nil {
			return nil, err
		}
		vals, err := d.Apply(board.X, board.Y, periods)
		if err != nil {
			return nil, err
		}
		pairs, err := groupPairs(vals, streamRingLen)
		if err != nil {
			return nil, err
		}
		enr, err := core.Enroll(pairs, core.Case1, 0, core.Options{})
		if err != nil {
			return nil, err
		}
		responses[i] = enr.Response
	}
	var streams []*bits.Stream
	for i := 0; i+1 < len(responses); i += 2 {
		streams = append(streams, bits.Concat(responses[i], responses[i+1]))
	}
	return streams, nil
}

// Aging studies bit stability over device lifetime: enroll at t=0, then
// regenerate after 1..15 years of continuous oscillation, comparing the
// configurable PUF against the traditional PUF on the same rings.
func (r *Runner) Aging() (*Result, error) {
	boards, err := r.InHouse()
	if err != nil {
		return nil, err
	}
	title := "Aging (extension) — bit stability over device lifetime"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	years := []float64{1, 2, 5, 10, 15}
	fmt.Fprintf(&b, "%-28s", "flipped positions (%)")
	for _, y := range years {
		fmt.Fprintf(&b, "%9s", fmt.Sprintf("%.0fy", y))
	}
	b.WriteString("\n")

	// Aged per-stage ddiffs and full-ring delays, computed from ground
	// truth (aging drift dwarfs measurement noise).
	agedPairs := func(board *dataset.InHouseBoard, a silicon.Aging) ([]core.Pair, error) {
		pairs := make([]core.Pair, 0, board.NumPairs())
		for i := 0; i+1 < len(board.Rings); i += 2 {
			alpha, err := board.Rings[i].AgedTrueDdiffsPS(silicon.Nominal, a)
			if err != nil {
				return nil, err
			}
			beta, err := board.Rings[i+1].AgedTrueDdiffsPS(silicon.Nominal, a)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, core.Pair{Alpha: alpha, Beta: beta})
		}
		return pairs, nil
	}
	agedFullRingDelays := func(board *dataset.InHouseBoard, a silicon.Aging) ([]float64, error) {
		out := make([]float64, len(board.Rings))
		for i, ring := range board.Rings {
			d, err := ring.AgedHalfPeriodPS(circuit.AllSelected(ring.NumStages()), silicon.Nominal, a)
			if err != nil {
				return nil, err
			}
			out[i] = d
		}
		return out, nil
	}

	for _, scheme := range []string{"configurable Case-2", "configurable Case-1", "traditional"} {
		fmt.Fprintf(&b, "%-28s", scheme)
		for _, y := range years {
			stress := silicon.Aging{Years: y, Activity: 1}
			flipped, total := 0, 0
			for _, board := range boards {
				fresh := silicon.Aging{}
				switch scheme {
				case "traditional":
					delays, err := agedFullRingDelays(board, fresh)
					if err != nil {
						return nil, err
					}
					enr, err := baseline.EnrollTraditional(delays, 0)
					if err != nil {
						return nil, err
					}
					aged, err := agedFullRingDelays(board, stress)
					if err != nil {
						return nil, err
					}
					resp, err := enr.Evaluate(aged)
					if err != nil {
						return nil, err
					}
					for i := 0; i < resp.Len(); i++ {
						total++
						if resp.Bit(i) != enr.Response.Bit(i) {
							flipped++
						}
					}
				default:
					mode := core.Case2
					if scheme == "configurable Case-1" {
						mode = core.Case1
					}
					pairs, err := agedPairs(board, fresh)
					if err != nil {
						return nil, err
					}
					enr, err := core.Enroll(pairs, mode, 0, core.Options{})
					if err != nil {
						return nil, err
					}
					aged, err := agedPairs(board, stress)
					if err != nil {
						return nil, err
					}
					resp, err := enr.Evaluate(aged)
					if err != nil {
						return nil, err
					}
					for i := 0; i < resp.Len(); i++ {
						total++
						if resp.Bit(i) != enr.Response.Bit(i) {
							flipped++
						}
					}
				}
			}
			fmt.Fprintf(&b, "%8.2f%%", 100*float64(flipped)/float64(total))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\nReading: per-device aging spread erodes small margins first, so the\ntraditional PUF degrades years earlier than the margin-maximized\nconfigurable PUF (Case-2's larger margins buy the most headroom).\n")
	return &Result{ID: "aging", Title: title, Text: b.String()}, nil
}
