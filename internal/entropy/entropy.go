// Package entropy estimates the min-entropy of PUF response bits, in the
// style of NIST SP 800-90B's binary estimators. Key generation (the paper's
// motivating application) needs the response's min-entropy per bit to be
// close to 1; systematic variation drags it below 1, which is another lens
// on why the distiller is required before key extraction.
//
// Implemented estimators:
//
//   - MostCommonValue (§6.3.1): −log2 of an upper confidence bound on the
//     most likely symbol's probability.
//   - Markov (§6.3.3, binary specialization): bounds the probability of the
//     most likely 128-bit sequence under a first-order Markov model.
//   - ShannonRate: block-frequency Shannon entropy rate (diagnostic, an
//     upper bound on min-entropy; not part of 90B).
//
// MinEntropyPerBit returns the conservative minimum of the estimators, as
// 90B prescribes.
package entropy

import (
	"errors"
	"fmt"
	"math"

	"ropuf/internal/bits"
)

// MostCommonValue implements the 90B most-common-value estimate on a binary
// sequence: p̂_u = p̂ + 2.576·√(p̂(1−p̂)/(N−1)), H = −log2(min(1, p̂_u)).
func MostCommonValue(s *bits.Stream) (float64, error) {
	n := s.Len()
	if n < 2 {
		return 0, errors.New("entropy: MostCommonValue needs at least 2 bits")
	}
	ones := s.OnesCount()
	zeros := n - ones
	count := ones
	if zeros > ones {
		count = zeros
	}
	p := float64(count) / float64(n)
	pu := p + 2.576*math.Sqrt(p*(1-p)/float64(n-1))
	if pu > 1 {
		pu = 1
	}
	if pu <= 0 {
		return 0, fmt.Errorf("entropy: degenerate probability bound %g", pu)
	}
	return -math.Log2(pu), nil
}

// Markov implements the 90B binary Markov estimate: transition
// probabilities are bounded upward with a confidence term, the most
// probable length-128 sequence is found over the chain, and the min-entropy
// per bit is −log2(p_max)/128.
func Markov(s *bits.Stream) (float64, error) {
	n := s.Len()
	if n < 3 {
		return 0, errors.New("entropy: Markov needs at least 3 bits")
	}
	// Counts: c[prev][next].
	var c [2][2]float64
	for i := 0; i+1 < n; i++ {
		c[s.Int(i)][s.Int(i+1)]++
	}
	p0 := float64(n-s.OnesCount()) / float64(n)
	p1 := 1 - p0
	// Upper confidence bounds per 90B: ε over initial probabilities and
	// per-row transition probabilities.
	eps := func(count float64) float64 {
		if count == 0 {
			return 1
		}
		return math.Sqrt(math.Log(1/0.05) / (2 * count))
	}
	bound := func(p, e float64) float64 {
		v := p + e
		if v > 1 {
			return 1
		}
		return v
	}
	var t [2][2]float64
	for prev := 0; prev < 2; prev++ {
		rowTotal := c[prev][0] + c[prev][1]
		for next := 0; next < 2; next++ {
			var p float64
			if rowTotal > 0 {
				p = c[prev][next] / rowTotal
			} else {
				p = 0.5
			}
			t[prev][next] = bound(p, eps(rowTotal))
		}
	}
	pInit := [2]float64{
		bound(p0, eps(float64(n))),
		bound(p1, eps(float64(n))),
	}
	// Most probable 128-bit sequence by dynamic programming over the
	// 2-state chain (work in log space to avoid underflow).
	const seqLen = 128
	logT := func(p float64) float64 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Log2(p)
	}
	best := [2]float64{logT(pInit[0]), logT(pInit[1])}
	for step := 1; step < seqLen; step++ {
		var next [2]float64
		for to := 0; to < 2; to++ {
			a := best[0] + logT(t[0][to])
			b := best[1] + logT(t[1][to])
			if a > b {
				next[to] = a
			} else {
				next[to] = b
			}
		}
		best = next
	}
	logPMax := best[0]
	if best[1] > logPMax {
		logPMax = best[1]
	}
	h := -logPMax / seqLen
	if h > 1 {
		h = 1
	}
	return h, nil
}

// ShannonRate estimates the Shannon entropy rate from overlapping m-bit
// block frequencies: H_m/m with H_m the block entropy. It upper-bounds the
// min-entropy and converges to the true rate as m grows (diagnostic only).
func ShannonRate(s *bits.Stream, m int) (float64, error) {
	n := s.Len()
	if m <= 0 || m > 16 {
		return 0, fmt.Errorf("entropy: block length %d out of range [1,16]", m)
	}
	if n < 4*(1<<uint(m)) {
		return 0, fmt.Errorf("entropy: %d bits too short for m=%d block statistics", n, m)
	}
	counts := make([]int, 1<<uint(m))
	window := 0
	mask := 1<<uint(m) - 1
	for i := 0; i < m-1; i++ {
		window = window<<1 | s.Int(i)
	}
	total := 0
	for i := m - 1; i < n; i++ {
		window = (window<<1 | s.Int(i)) & mask
		counts[window]++
		total++
	}
	var h float64
	for _, cnt := range counts {
		if cnt == 0 {
			continue
		}
		p := float64(cnt) / float64(total)
		h -= p * math.Log2(p)
	}
	return h / float64(m), nil
}

// Estimate bundles the individual estimators.
type Estimate struct {
	MCV     float64
	Markov  float64
	Shannon float64 // diagnostic upper bound
	// Min is the conservative per-bit min-entropy: min(MCV, Markov).
	Min float64
}

// MinEntropyPerBit runs every estimator and returns the bundle.
func MinEntropyPerBit(s *bits.Stream) (Estimate, error) {
	mcv, err := MostCommonValue(s)
	if err != nil {
		return Estimate{}, err
	}
	mk, err := Markov(s)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{MCV: mcv, Markov: mk, Min: math.Min(mcv, mk)}
	if sh, err := ShannonRate(s, 4); err == nil {
		est.Shannon = sh
	}
	return est, nil
}
