// Package attack analyzes the information the configurable RO PUF's public
// configuration vectors leak about its secret bits — the security argument
// of the paper's §III.D.
//
// The configuration of each pair is helper data: it may be stored off-chip
// or observed during enrollment, so the design must ensure it does not
// predict the response bit. The paper constrains Case-2 to select the SAME
// number of stages in both rings precisely because "the one that uses
// fewer inverters will most likely be faster".
//
// This package quantifies that argument. CountPredictor implements the
// attack the paper anticipates: guess that the ring with fewer selected
// stages is faster. Against an *unconstrained* margin-maximizing selector
// (SelectCase2Unconstrained) the predictor wins almost always; against the
// paper's equal-count Case-2 it is forced back to coin flipping.
package attack

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ropuf/internal/circuit"
	"ropuf/internal/core"
)

// Predictor guesses a pair's response bit from its public configuration.
type Predictor interface {
	// Predict returns the guessed bit (true = top ring slower) and whether
	// the predictor has any basis for a guess (false = abstain, counted as
	// a coin flip).
	Predict(x, y circuit.Config) (bit, confident bool)
	Name() string
}

// CountPredictor guesses that the ring selecting fewer stages is faster
// (hence the other is slower). With equal counts it abstains.
type CountPredictor struct{}

// Name implements Predictor.
func (CountPredictor) Name() string { return "stage-count" }

// Predict implements Predictor.
func (CountPredictor) Predict(x, y circuit.Config) (bool, bool) {
	cx, cy := x.Ones(), y.Ones()
	if cx == cy {
		return false, false
	}
	// More stages selected in the top ring → top slower → bit = true.
	return cx > cy, true
}

// Result summarizes a predictor's performance over a set of pairs.
type Result struct {
	Predictor string
	Total     int
	Confident int     // predictions where the attacker did not abstain
	Correct   int     // correct confident predictions
	Advantage float64 // |accuracy − 0.5| over all pairs, abstains counted as 0.5
}

// Accuracy returns the confident-prediction accuracy (0.5 when the
// predictor always abstains).
func (r Result) Accuracy() float64 {
	if r.Confident == 0 {
		return 0.5
	}
	return float64(r.Correct) / float64(r.Confident)
}

// Evaluate runs a predictor against enrolled selections (ground truth bits
// included in each Selection).
func Evaluate(p Predictor, selections []core.Selection) (Result, error) {
	if p == nil {
		return Result{}, errors.New("attack: nil predictor")
	}
	res := Result{Predictor: p.Name()}
	correctMass := 0.0
	for _, sel := range selections {
		if sel.X == nil || sel.Y == nil {
			continue // masked/degenerate pair: nothing published
		}
		res.Total++
		guess, confident := p.Predict(sel.X, sel.Y)
		if !confident {
			correctMass += 0.5
			continue
		}
		res.Confident++
		if guess == sel.Bit {
			res.Correct++
			correctMass++
		}
	}
	if res.Total == 0 {
		return Result{}, errors.New("attack: no usable selections")
	}
	res.Advantage = math.Abs(correctMass/float64(res.Total) - 0.5)
	return res, nil
}

// SelectCase2Unconstrained is the insecure strawman the paper's equal-count
// rule defends against: maximize |Σ selected α − Σ selected β| over ALL
// non-empty subset pairs, with no cardinality constraint. The optimum
// simply selects every stage of the slow ring and the single fastest stage
// of the fast ring, so the stage counts broadcast the answer.
func SelectCase2Unconstrained(alpha, beta []float64) (core.Selection, error) {
	n := len(alpha)
	if n == 0 || n != len(beta) {
		return core.Selection{}, fmt.Errorf("attack: bad vector lengths %d/%d", len(alpha), len(beta))
	}
	// Direction 1: top slower. Take all positive-contribution α... since
	// delays are positive, the maximum of Σα_S − Σβ_T is Σ(all α) − min β.
	sumAll := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s
	}
	argMin := func(v []float64) int {
		idx := 0
		for i, x := range v {
			if x < v[idx] {
				idx = i
			}
		}
		return idx
	}
	topMargin := sumAll(alpha) - beta[argMin(beta)]
	botMargin := sumAll(beta) - alpha[argMin(alpha)]
	x := circuit.NewConfig(n)
	y := circuit.NewConfig(n)
	if topMargin >= botMargin {
		for i := range x {
			x[i] = true
		}
		y[argMin(beta)] = true
	} else {
		for i := range y {
			y[i] = true
		}
		x[argMin(alpha)] = true
	}
	sel := core.Selection{X: x, Y: y}
	bit, margin, err := sel.Evaluate(alpha, beta)
	if err != nil {
		return core.Selection{}, err
	}
	sel.Bit, sel.Margin = bit, margin
	return sel, nil
}

// ConfigEntropyBits estimates the empirical Shannon entropy (in bits) of a
// set of configuration vectors, an upper bound on how much an attacker
// learns per pair from the helper data distribution itself.
func ConfigEntropyBits(configs []circuit.Config) (float64, error) {
	if len(configs) == 0 {
		return 0, errors.New("attack: no configurations")
	}
	counts := map[string]int{}
	for _, c := range configs {
		counts[c.String()]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var h float64
	n := float64(len(configs))
	for _, k := range keys {
		p := float64(counts[k]) / n
		h -= p * math.Log2(p)
	}
	return h, nil
}
