package authserve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ropuf/internal/auth"
	"ropuf/internal/bits"
	"ropuf/internal/core"
	"ropuf/internal/fleet"
)

// TestStoreConcurrentHammer drives the sharded store from many goroutines
// with overlapping device IDs — parallel enrolls racing on the same ID,
// challenge/verify/device-info traffic interleaved — and checks the
// aggregate invariants afterwards. Run under -race (make verify), this
// pins the thread-safety contract that wraps the non-thread-safe
// auth.Verifier.
func TestStoreConcurrentHammer(t *testing.T) {
	const (
		numDevices = 24
		goroutines = 16
		opsPerG    = 40
	)
	devices, err := fleet.Synthetic(numDevices, 16, 7, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(StoreOptions{Shards: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	var enrolled, dupes, challenges, verified atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < opsPerG; op++ {
				d := devices[(g+op)%numDevices]
				switch op % 4 {
				case 0: // racing enrolls on overlapping IDs
					_, err := store.Enroll(d.ID, d.Pairs, core.Case2)
					switch {
					case err == nil:
						enrolled.Add(1)
					case errors.Is(err, auth.ErrDuplicateDevice):
						dupes.Add(1)
					default:
						t.Errorf("enroll %s: %v", d.ID, err)
					}
				case 1: // challenge + immediate verify with reference bits
					nonce, ch, _, err := store.Challenge(d.ID, 2)
					if err != nil {
						if errors.Is(err, auth.ErrUnknownDevice) || errors.Is(err, auth.ErrExhausted) {
							continue
						}
						t.Errorf("challenge %s: %v", d.ID, err)
						continue
					}
					challenges.Add(1)
					resp := bits.New(len(ch.Pairs))
					for range ch.Pairs {
						resp.Append(false)
					}
					if _, _, _, err := store.Verify(d.ID, nonce, resp); err != nil {
						t.Errorf("verify %s: %v", d.ID, err)
						continue
					}
					verified.Add(1)
				case 2: // replayed/unknown challenge must never panic
					if _, _, _, err := store.Verify(d.ID, "bogus", bits.New(0)); !errors.Is(err, ErrUnknownChallenge) {
						t.Errorf("bogus verify %s: %v", d.ID, err)
					}
				case 3: // read path
					if _, err := store.Device(d.ID); err != nil && !errors.Is(err, auth.ErrUnknownDevice) {
						t.Errorf("device %s: %v", d.ID, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every device was enrolled exactly once across all racing attempts.
	if got := store.NumDevices(); got != numDevices {
		t.Fatalf("store holds %d devices, want %d", got, numDevices)
	}
	if enrolled.Load() != numDevices {
		t.Fatalf("%d successful enrolls, want %d (dupes %d)", enrolled.Load(), numDevices, dupes.Load())
	}
	if verified.Load() != challenges.Load() {
		t.Fatalf("%d challenges but %d verifies — outstanding table leaked", challenges.Load(), verified.Load())
	}
	// Consumed-pair accounting adds up: fresh = bits - 2*challenges, summed.
	totalFresh, totalBits := 0, 0
	for _, d := range devices {
		info, err := store.Device(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		totalFresh += info.Fresh
		totalBits += info.Bits
		if info.Outstanding != 0 {
			t.Fatalf("device %s still has %d outstanding challenges", d.ID, info.Outstanding)
		}
	}
	if want := totalBits - 2*int(challenges.Load()); totalFresh != want {
		t.Fatalf("fresh pairs %d, want %d (%d bits - 2x%d challenges)", totalFresh, want, totalBits, challenges.Load())
	}
}

// TestCrashRestart simulates a kill -9 between mutations: the store is
// reopened from its write-through snapshots without SaveAll. No enrolled
// device may be lost, consumed pairs must stay consumed, and challenges
// issued before the crash must be rejected afterwards.
func TestCrashRestart(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(6, 16, 7, 0xDEAD)
	if err != nil {
		t.Fatal(err)
	}
	opt := StoreOptions{Shards: 4, Dir: dir, Seed: 5}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devices {
		if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
			t.Fatal(err)
		}
	}
	// Issue challenges; leave them all outstanding (unverified) at the
	// moment of the "crash".
	type issued struct {
		id, nonce string
		pairs     []int
	}
	var preCrash []issued
	freshBefore := map[string]int{}
	for _, d := range devices {
		nonce, ch, _, err := store.Challenge(d.ID, 4)
		if err != nil {
			t.Fatal(err)
		}
		preCrash = append(preCrash, issued{id: d.ID, nonce: nonce, pairs: ch.Pairs})
		info, err := store.Device(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		freshBefore[d.ID] = info.Fresh
	}

	// Crash: drop the store on the floor — no SaveAll, no drain. The
	// write-through snapshots on disk are all that survives.
	store = nil

	restored, err := Open(opt)
	if err != nil {
		t.Fatalf("reopening after crash: %v", err)
	}
	if got := restored.NumDevices(); got != len(devices) {
		t.Fatalf("restored %d devices, want %d", got, len(devices))
	}
	for _, d := range devices {
		info, err := restored.Device(d.ID)
		if err != nil {
			t.Fatalf("device %s lost in crash: %v", d.ID, err)
		}
		if info.Fresh != freshBefore[d.ID] {
			t.Fatalf("device %s fresh=%d after restart, want %d (consumed pairs resurrected)",
				d.ID, info.Fresh, freshBefore[d.ID])
		}
		if info.Outstanding != 0 {
			t.Fatalf("device %s has %d outstanding challenges after restart", d.ID, info.Outstanding)
		}
	}
	// Every pre-crash challenge is dead: a perfect response is rejected.
	for _, iss := range preCrash {
		resp := bits.New(len(iss.pairs))
		for range iss.pairs {
			resp.Append(true)
		}
		if _, _, _, err := restored.Verify(iss.id, iss.nonce, resp); !errors.Is(err, ErrUnknownChallenge) {
			t.Fatalf("pre-crash challenge %s for %s not rejected: %v", iss.nonce, iss.id, err)
		}
	}
	// New challenges never re-issue pairs consumed before the crash.
	for i, iss := range preCrash {
		consumed := map[int]bool{}
		for _, p := range iss.pairs {
			consumed[p] = true
		}
		for {
			_, ch, _, err := restored.Challenge(iss.id, 4)
			if errors.Is(err, auth.ErrExhausted) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ch.Pairs {
				if consumed[p] {
					t.Fatalf("device %s: pair %d re-issued after crash (challenge %d)", iss.id, p, i)
				}
			}
		}
	}
}

// TestOpenOptionMismatch pins that a data directory cannot be silently
// reopened with a different shard count or tolerance.
func TestOpenOptionMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(StoreOptions{Shards: 4, Tolerance: 0.1, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(StoreOptions{Shards: 8, Tolerance: 0.1, Dir: dir}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if _, err := Open(StoreOptions{Shards: 4, Tolerance: 0.2, Dir: dir}); err == nil {
		t.Fatal("tolerance mismatch accepted")
	}
	if _, err := Open(StoreOptions{Shards: 4, Tolerance: 0.1, Dir: dir}); err != nil {
		t.Fatalf("matching reopen rejected: %v", err)
	}
}

// TestCorruptSnapshotRejected pins that Open surfaces a decodable error
// for a torn or corrupted shard file instead of silently dropping devices.
func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	opt := StoreOptions{Shards: 2, Dir: dir}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	devices, err := fleet.Synthetic(2, 8, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devices {
		if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
			t.Fatal(err)
		}
	}
	// Enrollments land in the WAL; fold it so the snapshots exist.
	if err := store.SaveAll(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shard snapshots written: %v %v", files, err)
	}
	if err := corruptFile(files[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opt); err == nil {
		t.Fatal("corrupted snapshot accepted")
	}
}

// corruptFile truncates a snapshot mid-file, simulating torn bytes from a
// filesystem that lost the rename's atomicity guarantee.
func corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data[:len(data)/2], 0o644)
}

// TestEnrollRetryAfterPersistFailure pins the persist-failure bugfix: the
// pre-WAL store left a failed-durability enrollment in memory, so the
// client it told to re-enroll then hit ErrDuplicateDevice forever. The
// WAL append is now the atomicity point — on failure the in-memory
// enrollment rolls back and the retry starts clean.
func TestEnrollRetryAfterPersistFailure(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(1, 8, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := devices[0]
	opt := StoreOptions{Shards: 2, Dir: dir, CompactBytes: -1}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sh := store.shardFor(d.ID)
	sh.wal.failAppends = true
	if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); !errors.Is(err, ErrPersist) {
		t.Fatalf("enroll with failing WAL = %v, want ErrPersist", err)
	}
	if store.WALFailures() == 0 {
		t.Fatal("WAL failure not counted for health reporting")
	}
	// No ghost: the device must be unknown, not half-enrolled.
	if _, err := store.Device(d.ID); !errors.Is(err, auth.ErrUnknownDevice) {
		t.Fatalf("device after failed enroll = %v, want ErrUnknownDevice", err)
	}

	sh.wal.failAppends = false
	if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
		t.Fatalf("retry after persist failure = %v (the pre-WAL store answered ErrDuplicateDevice here)", err)
	}
	// The retried enrollment is durable: a crash-reopen still has it.
	restored, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if _, err := restored.Device(d.ID); err != nil {
		t.Fatalf("retried enrollment lost in crash: %v", err)
	}
}

// TestChallengeRollbackOnPersistFailure audits Challenge's analogous
// path: a challenge whose consume record cannot be made durable must not
// burn the pairs (they never left the process) and must not be issued.
func TestChallengeRollbackOnPersistFailure(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(1, 8, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := devices[0]
	store, err := Open(StoreOptions{Shards: 2, Dir: dir, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
		t.Fatal(err)
	}
	before, err := store.Device(d.ID)
	if err != nil {
		t.Fatal(err)
	}

	sh := store.shardFor(d.ID)
	sh.wal.failAppends = true
	if _, _, _, err := store.Challenge(d.ID, 2); !errors.Is(err, ErrPersist) {
		t.Fatalf("challenge with failing WAL = %v, want ErrPersist", err)
	}
	after, err := store.Device(d.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Fresh != before.Fresh {
		t.Fatalf("fresh %d after failed challenge, want %d (pairs burned without durability)", after.Fresh, before.Fresh)
	}
	if after.Outstanding != 0 {
		t.Fatalf("%d outstanding challenges after failed issuance", after.Outstanding)
	}

	sh.wal.failAppends = false
	if _, _, _, err := store.Challenge(d.ID, 2); err != nil {
		t.Fatalf("challenge retry = %v", err)
	}
	final, _ := store.Device(d.ID)
	if final.Fresh != before.Fresh-2 {
		t.Fatalf("fresh %d after successful challenge, want %d", final.Fresh, before.Fresh-2)
	}
}

// TestShardForHighBitIDs pins the uint32 routing arithmetic: with
// int(h.Sum32()) % n the modulo goes negative for high-bit hashes where
// int is 32 bits, and s.shards[negative] panics. Routing must agree with
// pure uint32 arithmetic for IDs whose hash has the top bit set.
func TestShardForHighBitIDs(t *testing.T) {
	const shards = 3 // not a power of two, so a sign flip changes the result
	store, err := Open(StoreOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := 0; i < 10000 && found < 16; i++ {
		id := fmt.Sprintf("dev-%04d", i)
		h := fnv.New32a()
		h.Write([]byte(id))
		sum := h.Sum32()
		if sum < 1<<31 {
			continue
		}
		found++
		if got, want := store.shardFor(id), store.shards[sum%uint32(shards)]; got != want {
			t.Fatalf("shardFor(%q) routed to the wrong shard for high-bit hash %#x", id, sum)
		}
	}
	if found == 0 {
		t.Fatal("no device IDs with high-bit FNV-1a hashes in the probe range")
	}
}

// TestMidCompactionCrashRestart extends the kill -9 durability guarantee
// into the compaction window: the snapshot has been durably renamed but
// the WAL not yet truncated, so recovery replays the full log over a
// snapshot that already contains it. Replay idempotency must converge to
// the same state, not double-apply or reject.
func TestMidCompactionCrashRestart(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(6, 16, 7, 0xC0DE)
	if err != nil {
		t.Fatal(err)
	}
	opt := StoreOptions{Shards: 2, Dir: dir, Seed: 5, CompactBytes: -1}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	freshBefore := map[string]int{}
	for _, d := range devices {
		if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := store.Challenge(d.ID, 4); err != nil {
			t.Fatal(err)
		}
		info, err := store.Device(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		freshBefore[d.ID] = info.Fresh
	}

	// Crash inside the compaction: snapshot durable, WAL untouched.
	store.testCrashBeforeWALReset = true
	if err := store.SaveAll(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if len(snaps) == 0 {
		t.Fatal("compaction wrote no snapshots")
	}
	walBytes := int64(0)
	wals, _ := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	for _, w := range wals {
		fi, err := os.Stat(w)
		if err != nil {
			t.Fatal(err)
		}
		walBytes += fi.Size()
	}
	if walBytes == 0 {
		t.Fatal("WAL already truncated — the mid-compaction crash hook did not fire")
	}

	check := func(s *Store, phase string) {
		t.Helper()
		if got := s.NumDevices(); got != len(devices) {
			t.Fatalf("%s: %d devices, want %d", phase, got, len(devices))
		}
		for _, d := range devices {
			info, err := s.Device(d.ID)
			if err != nil {
				t.Fatalf("%s: device %s: %v", phase, d.ID, err)
			}
			if info.Fresh != freshBefore[d.ID] {
				t.Fatalf("%s: device %s fresh=%d, want %d", phase, d.ID, info.Fresh, freshBefore[d.ID])
			}
		}
	}
	restored, err := Open(opt)
	if err != nil {
		t.Fatalf("reopening after mid-compaction crash: %v", err)
	}
	check(restored, "after mid-compaction crash")

	// Let the restored store finish the interrupted compaction cleanly,
	// then crash again: snapshot-only recovery must agree too.
	if err := restored.SaveAll(); err != nil {
		t.Fatal(err)
	}
	restored.Close()
	final, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	check(final, "after completed compaction")
}

// TestWALReplayEquivalence pins that a WAL-backed store recovered from
// disk is state-equivalent to an identically-driven in-memory store: the
// log is a faithful encoding of the mutation history, not an
// approximation of it.
func TestWALReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(10, 16, 7, 0xFACE)
	if err != nil {
		t.Fatal(err)
	}
	opt := StoreOptions{Shards: 4, Seed: 9, Dir: dir, CompactBytes: -1}
	persistent, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer persistent.Close()
	memory, err := Open(StoreOptions{Shards: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	consumed := map[string]map[int]bool{}
	for _, d := range devices {
		consumed[d.ID] = map[int]bool{}
	}
	for _, s := range []*Store{persistent, memory} {
		for _, d := range devices {
			if _, err := s.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 2; round++ {
		for _, d := range devices {
			_, ch, _, err := persistent.Challenge(d.ID, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ch.Pairs {
				consumed[d.ID][p] = true
			}
			if _, _, _, err := memory.Challenge(d.ID, 3); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Crash the persistent store and recover purely from snapshot-less
	// WAL replay (CompactBytes < 0, so nothing was ever folded).
	restored, err := Open(opt)
	if err != nil {
		t.Fatalf("recovering from WAL: %v", err)
	}
	defer restored.Close()
	if restored.NumDevices() != memory.NumDevices() {
		t.Fatalf("restored %d devices, in-memory twin has %d", restored.NumDevices(), memory.NumDevices())
	}
	for _, d := range devices {
		a, err := restored.Device(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, err := memory.Device(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		a.Outstanding = 0 // challenges are memory-only by design
		b.Outstanding = 0
		if a != b {
			t.Fatalf("device %s: restored %+v, in-memory twin %+v", d.ID, a, b)
		}
	}
	// The replayed consumed-set is exact: draining the restored store
	// never re-issues a pre-crash pair.
	for _, d := range devices {
		for {
			_, ch, _, err := restored.Challenge(d.ID, 3)
			if errors.Is(err, auth.ErrExhausted) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ch.Pairs {
				if consumed[d.ID][p] {
					t.Fatalf("device %s: consumed pair %d re-issued after replay", d.ID, p)
				}
			}
		}
	}
}

// TestBackgroundCompaction drives the store past the WAL threshold and
// waits for the background compactor to fold the log: the WAL empties,
// the snapshot appears, and recovery from the folded state is complete.
func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(8, 16, 7, 0xAB)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold far below one enrollment record (~220 bytes with header),
	// so every enroll kicks the compactor — including the last one. A
	// threshold above one record can strand a sub-threshold tail that
	// nothing ever kicks for (that tail is fine for recovery, but this
	// test wants the log fully folded).
	opt := StoreOptions{Shards: 1, Dir: dir, CompactBytes: 64}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, d := range devices {
		if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for store.WALBacklogBytes() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor never drained the WAL (backlog %d bytes)", store.WALBacklogBytes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-0000.json")); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	restored, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.NumDevices(); got != len(devices) {
		t.Fatalf("restored %d devices after compaction, want %d", got, len(devices))
	}
}

// TestStoreTornWALTailRecovery crashes the store with a torn trailing
// record on disk: recovery keeps every whole record, drops the tear, and
// the log accepts new appends afterwards.
func TestStoreTornWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(4, 8, 7, 0x7EA4)
	if err != nil {
		t.Fatal(err)
	}
	opt := StoreOptions{Shards: 1, Dir: dir, CompactBytes: -1}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devices[:3] {
		if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial record the crash never finished writing.
	f, err := os.OpenFile(filepath.Join(dir, "shard-0000.wal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored, err := Open(opt)
	if err != nil {
		t.Fatalf("reopening with torn WAL tail: %v", err)
	}
	if got := restored.NumDevices(); got != 3 {
		t.Fatalf("restored %d devices, want 3", got)
	}
	// Appends continue cleanly after the truncation.
	if _, err := restored.Enroll(devices[3].ID, devices[3].Pairs, core.Case2); err != nil {
		t.Fatal(err)
	}
	restored.Close()
	final, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if got := final.NumDevices(); got != 4 {
		t.Fatalf("post-tear enroll lost: %d devices, want 4", got)
	}
}
