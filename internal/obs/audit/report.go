package audit

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"ropuf/internal/benchfmt"
	"ropuf/internal/obs"
)

// Options tunes Analyze.
type Options struct {
	// Top bounds the consumer table; <= 0 means all devices.
	Top int
}

// FlagEpisode is one raise/clear cycle of an abuse flag, with the numeric
// evidence the scorer attached when it fired.
type FlagEpisode struct {
	Reason   string
	Raised   time.Time
	Cleared  time.Time // zero while still flagged
	Evidence map[string]float64
	TraceID  string // request that tipped the scorer, when one was in flight
}

// Active reports whether the episode is still open.
func (e *FlagEpisode) Active() bool { return e.Cleared.IsZero() }

// DeviceReport aggregates one device's audit history.
type DeviceReport struct {
	ID          string
	Enrolls     int
	Challenges  int
	VerifyFails int
	// PairsConsumed sums the k of every challenge event — the device's
	// total CRP-space spend over the observed window.
	PairsConsumed float64
	// FreshLast is the pairs-remaining count after the device's most
	// recent challenge (-1 when no challenge event carried it).
	FreshLast float64
	// First/Last bound the device's activity in the stream.
	First, Last time.Time
	// DrainPerSec is PairsConsumed over the activity interval; TTESeconds
	// projects FreshLast at that rate (+Inf when not draining or unknown).
	DrainPerSec float64
	TTESeconds  float64
	Flags       []FlagEpisode
}

// Flagged reports whether the device has an open flag episode.
func (d *DeviceReport) Flagged() bool {
	for i := range d.Flags {
		if d.Flags[i].Active() {
			return true
		}
	}
	return false
}

// Report is the merged audit + trace analysis.
type Report struct {
	Files   int
	Events  int
	Devices int
	ByEvent map[string]int

	// WithTrace counts audit events carrying a trace ID; TraceMatched is
	// the subset whose ID also appears in the provided span set — the
	// audit↔trace stitch rate. SpanTraces is the span set's trace count.
	WithTrace    int
	TraceMatched int
	SpanTraces   int

	// Consumers is every device sorted by PairsConsumed descending,
	// truncated to Options.Top. Flagged lists devices with at least one
	// flag episode (open or closed), sorted by ID; it is never truncated.
	Consumers []DeviceReport
	Flagged   []DeviceReport
}

// TraceMatchedFraction is TraceMatched/WithTrace (0 with no traced events).
func (r *Report) TraceMatchedFraction() float64 {
	if r.WithTrace == 0 {
		return 0
	}
	return float64(r.TraceMatched) / float64(r.WithTrace)
}

// Analyze folds audit events and (optionally) span events from -trace-out
// files into per-device reports. Spans contribute only their trace-ID set:
// an audit event whose trace ID resolves to a span is "matched", proving
// the stream stitches to the request traces around it.
func Analyze(events []Event, spans []obs.SpanEvent, opt Options) *Report {
	rep := &Report{Events: len(events), ByEvent: map[string]int{}}

	spanTraces := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID != "" {
			spanTraces[sp.TraceID] = true
		}
	}
	rep.SpanTraces = len(spanTraces)

	devices := map[string]*DeviceReport{}
	dev := func(id string) *DeviceReport {
		d := devices[id]
		if d == nil {
			d = &DeviceReport{ID: id, FreshLast: -1}
			devices[id] = d
		}
		return d
	}
	for _, ev := range events {
		rep.ByEvent[ev.Event]++
		if ev.TraceID != "" {
			rep.WithTrace++
			if spanTraces[ev.TraceID] {
				rep.TraceMatched++
			}
		}
		if ev.DeviceID == "" {
			continue
		}
		d := dev(ev.DeviceID)
		if d.First.IsZero() || ev.TS.Before(d.First) {
			d.First = ev.TS
		}
		if ev.TS.After(d.Last) {
			d.Last = ev.TS
		}
		switch ev.Event {
		case EventEnroll:
			d.Enrolls++
		case EventChallenge:
			d.Challenges++
			d.PairsConsumed += ev.Detail["k"]
			if fresh, ok := ev.Detail["fresh_after"]; ok {
				d.FreshLast = fresh
			}
		case EventVerifyFail:
			d.VerifyFails++
		case EventFlag:
			d.Flags = append(d.Flags, FlagEpisode{
				Reason:   ev.Reason,
				Raised:   ev.TS,
				Evidence: ev.Detail,
				TraceID:  ev.TraceID,
			})
		case EventUnflag:
			// Close the most recent open episode with this reason.
			for i := len(d.Flags) - 1; i >= 0; i-- {
				if d.Flags[i].Reason == ev.Reason && d.Flags[i].Active() {
					d.Flags[i].Cleared = ev.TS
					break
				}
			}
		}
	}
	rep.Devices = len(devices)

	for _, d := range devices {
		d.TTESeconds = math.Inf(1)
		if span := d.Last.Sub(d.First); span > 0 && d.PairsConsumed > 0 {
			d.DrainPerSec = d.PairsConsumed / span.Seconds()
			if d.FreshLast >= 0 {
				d.TTESeconds = d.FreshLast / d.DrainPerSec
			}
		}
		rep.Consumers = append(rep.Consumers, *d)
		if len(d.Flags) > 0 {
			rep.Flagged = append(rep.Flagged, *d)
		}
	}
	sort.Slice(rep.Consumers, func(i, j int) bool {
		if rep.Consumers[i].PairsConsumed != rep.Consumers[j].PairsConsumed {
			return rep.Consumers[i].PairsConsumed > rep.Consumers[j].PairsConsumed
		}
		return rep.Consumers[i].ID < rep.Consumers[j].ID
	})
	sort.Slice(rep.Flagged, func(i, j int) bool { return rep.Flagged[i].ID < rep.Flagged[j].ID })
	if opt.Top > 0 && len(rep.Consumers) > opt.Top {
		rep.Consumers = rep.Consumers[:opt.Top]
	}
	return rep
}

// BenchResults renders the report's headline numbers in the shared
// benchfmt JSON shape so they can land next to BENCH_authserve.json.
// Counts ride in Iterations; rates abuse NsPerOp the same way tracestat's
// percentile records do.
func (r *Report) BenchResults() map[string]benchfmt.Result {
	out := map[string]benchfmt.Result{
		"BenchmarkAuditEvents":         {Iterations: int64(r.Events)},
		"BenchmarkAuditFlaggedDevices": {Iterations: int64(len(r.Flagged))},
		"BenchmarkAuditTraceMatchedPct": {
			Iterations: int64(r.TraceMatched),
			NsPerOp:    100 * r.TraceMatchedFraction(),
		},
	}
	if len(r.Consumers) > 0 {
		top := r.Consumers[0]
		out["BenchmarkAuditTopConsumerPairs"] = benchfmt.Result{
			Iterations: int64(top.PairsConsumed),
			NsPerOp:    top.DrainPerSec,
		}
	}
	return out
}

// WriteText renders the human-readable report: stream summary, trace
// correlation, top consumers, flagged devices with their evidence
// windows, and the exhaustion forecast.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "read %d files: %d audit events, %d devices\n",
		r.Files, r.Events, r.Devices); err != nil {
		return err
	}
	var kinds []string
	for k := range r.ByEvent {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s %d", k, r.ByEvent[k]))
	}
	fmt.Fprintf(w, "events by type: %s\n", strings.Join(parts, ", "))
	fmt.Fprintf(w, "trace correlation: %d/%d traced events matched to spans (%.1f%%), %d span traces\n",
		r.TraceMatched, r.WithTrace, 100*r.TraceMatchedFraction(), r.SpanTraces)

	fmt.Fprintf(w, "\ntop consumers (by pairs consumed):\n")
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %10s %10s %9s\n",
		"device", "chals", "fails", "pairs", "fresh", "drain/s", "tte")
	for i := range r.Consumers {
		d := &r.Consumers[i]
		fmt.Fprintf(w, "  %-12s %8d %8d %8.0f %10s %10.2f %9s\n",
			d.ID, d.Challenges, d.VerifyFails, d.PairsConsumed,
			freshStr(d.FreshLast), d.DrainPerSec, tteStr(d.TTESeconds))
	}

	if len(r.Flagged) == 0 {
		fmt.Fprintf(w, "\nflagged devices: none\n")
		return nil
	}
	fmt.Fprintf(w, "\nflagged devices:\n")
	for i := range r.Flagged {
		d := &r.Flagged[i]
		for _, ep := range d.Flags {
			state := "cleared " + ep.Cleared.Format(time.RFC3339)
			if ep.Active() {
				state = "ACTIVE"
			}
			fmt.Fprintf(w, "  %-12s %-10s raised %s  %s\n",
				d.ID, ep.Reason, ep.Raised.Format(time.RFC3339), state)
			var keys []string
			for k := range ep.Evidence {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "    evidence %-22s %g\n", k, ep.Evidence[k])
			}
			if ep.TraceID != "" {
				fmt.Fprintf(w, "    trace %s\n", ep.TraceID)
			}
		}
	}
	return nil
}

func freshStr(fresh float64) string {
	if fresh < 0 {
		return "?"
	}
	return fmt.Sprintf("%.0f", fresh)
}

func tteStr(tte float64) string {
	if math.IsInf(tte, 1) {
		return "-"
	}
	return (time.Duration(tte * float64(time.Second))).Round(time.Second).String()
}
