package distill_test

import (
	"fmt"
	"log"
	"math"

	"ropuf/internal/distill"
)

// ExampleDistiller_Apply shows the distiller absorbing a smooth systematic
// surface exactly: a quadratic trend leaves zero residuals under a
// degree-2 fit, so whatever survives distillation on real data is the
// spatially uncorrelated (PUF-usable) variation.
func ExampleDistiller_Apply() {
	var xs, ys []int
	var vals []float64
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			fx, fy := float64(x), float64(y)
			xs = append(xs, x)
			ys = append(ys, y)
			vals = append(vals, 100+3*fx-2*fy+0.5*fx*fx-0.25*fx*fy)
		}
	}
	d, err := distill.New(2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Apply(xs, ys, vals)
	if err != nil {
		log.Fatal(err)
	}
	var maxAbs float64
	for _, r := range res {
		maxAbs = math.Max(maxAbs, math.Abs(r))
	}
	fmt.Printf("residuals eliminated (max |r| < 1e-8): %v\n", maxAbs < 1e-8)
	// Output:
	// residuals eliminated (max |r| < 1e-8): true
}
