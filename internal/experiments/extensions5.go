package experiments

// Fifth extension group: multi-bit extraction from disjoint configurations
// (the yield direction the paper's framework enables but never evaluates)
// and the measurement-protocol ablation promised in DESIGN.md §5.

import (
	"fmt"
	"math"
	"strings"

	"ropuf/internal/core"
	"ropuf/internal/measure"
	"ropuf/internal/rngx"
	"ropuf/internal/silicon"
	"ropuf/internal/stats"
)

// Multibit extracts several disjoint-configuration bits per ring pair and
// measures each extraction round's margin and voltage-sweep stability.
func (r *Runner) Multibit() (*Result, error) {
	boards, err := r.InHouse()
	if err != nil {
		return nil, err
	}
	title := "Multi-bit (extension) — disjoint configurations per ring pair"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	const maxBits = 4
	sweep := []silicon.Env{{V: 0.98, T: 25}, {V: 1.08, T: 25}, {V: 1.32, T: 25}, {V: 1.44, T: 25}}

	type round struct {
		count  int
		margin float64
		flips  int
		evals  int
	}
	rounds := make([]round, maxBits)
	for _, board := range boards {
		nomPairs, err := board.MeasurePairs(silicon.Nominal)
		if err != nil {
			return nil, err
		}
		envPairs := make([][]core.Pair, len(sweep))
		for i, env := range sweep {
			p, err := board.MeasurePairs(env)
			if err != nil {
				return nil, err
			}
			envPairs[i] = p
		}
		for pi, p := range nomPairs {
			sels, err := core.SelectMulti(core.Case2, p.Alpha, p.Beta, maxBits, 0, core.Options{})
			if err != nil {
				return nil, err
			}
			for ri, sel := range sels {
				rounds[ri].count++
				rounds[ri].margin += sel.Margin
				for ei := range sweep {
					bit, _, err := sel.Evaluate(envPairs[ei][pi].Alpha, envPairs[ei][pi].Beta)
					if err != nil {
						return nil, err
					}
					rounds[ri].evals++
					if bit != sel.Bit {
						rounds[ri].flips++
					}
				}
			}
		}
	}
	fmt.Fprintf(&b, "Case-2, 13-stage pairs, %d boards x 32 pairs; flips over the voltage sweep.\n\n", len(boards))
	fmt.Fprintf(&b, "%8s %10s %14s %12s\n", "round", "pairs", "mean margin", "flip rate")
	for ri, rd := range rounds {
		if rd.count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%8d %10d %11.1f ps %11.2f%%\n",
			ri+1, rd.count, rd.margin/float64(rd.count), 100*float64(rd.flips)/float64(rd.evals))
	}
	fmt.Fprintf(&b, "\nReading: a second disjoint configuration still carries a usable margin\n(the stages the first bit skipped), trading yield against reliability —\nround-1 bits stay rock solid while later rounds need the §IV.E threshold\nto mask their weakest instances. One pair is worth more than one bit.\n")
	return &Result{ID: "multibit", Title: title, Text: b.String()}, nil
}

// Measurement ablates the §III.B protocol's accuracy against measurement
// noise and averaging: RMSE of recovered ddiffs (leave-one-out vs
// per-stage singleton) and the downstream enrollment-bit agreement with
// noiseless ground truth.
func (r *Runner) Measurement() (*Result, error) {
	boards, err := r.InHouse()
	if err != nil {
		return nil, err
	}
	title := "Measurement (extension) — §III.B protocol accuracy ablation"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	board := boards[0]

	// Ground-truth ddiffs and bits.
	truth := make([][]float64, len(board.Rings))
	for i, ring := range board.Rings {
		truth[i] = ring.TrueDdiffsPS(silicon.Nominal)
	}
	truthBits := make([]bool, 0, len(board.Rings)/2)
	for i := 0; i+1 < len(board.Rings); i += 2 {
		sel, err := core.SelectCase2(truth[i], truth[i+1], core.Options{})
		if err != nil {
			return nil, err
		}
		truthBits = append(truthBits, sel.Bit)
	}

	fmt.Fprintf(&b, "%10s %8s %14s %14s %14s\n",
		"noise(ps)", "repeats", "RMSE loo(ps)", "RMSE single", "bit agreement")
	for _, noise := range []float64{0.5, 2, 5} {
		for _, repeats := range []int{1, 5, 20} {
			rng := rngx.New(uint64(noise*1000) + uint64(repeats))
			meter := measure.NewMeter(silicon.Nominal, rng)
			meter.NoisePS = noise
			meter.Repeats = repeats

			var seLoo, seSingle float64
			samples := 0
			agree, bitsN := 0, 0
			est := make([][]float64, len(board.Rings))
			for i, ring := range board.Rings {
				loo, err := meter.Ddiffs(ring)
				if err != nil {
					return nil, err
				}
				single, err := meter.DdiffsSingleton(ring)
				if err != nil {
					return nil, err
				}
				est[i] = loo
				for k := range truth[i] {
					dL := loo[k] - truth[i][k]
					dS := single[k] - truth[i][k]
					seLoo += dL * dL
					seSingle += dS * dS
					samples++
				}
			}
			for i := 0; i+1 < len(board.Rings); i += 2 {
				sel, err := core.SelectCase2(est[i], est[i+1], core.Options{})
				if err != nil {
					return nil, err
				}
				if sel.Bit == truthBits[i/2] {
					agree++
				}
				bitsN++
			}
			fmt.Fprintf(&b, "%10.1f %8d %14.3f %14.3f %13.1f%%\n",
				noise, repeats,
				math.Sqrt(seLoo/float64(samples)),
				math.Sqrt(seSingle/float64(samples)),
				100*float64(agree)/float64(bitsN))
		}
	}
	// Margin context: typical Case-2 margins dwarf the estimation error.
	var margins []float64
	for i := 0; i+1 < len(board.Rings); i += 2 {
		sel, err := core.SelectCase2(truth[i], truth[i+1], core.Options{})
		if err != nil {
			return nil, err
		}
		margins = append(margins, sel.Margin)
	}
	fmt.Fprintf(&b, "\nMean true Case-2 margin: %.1f ps — estimation error stays an order of\nmagnitude below it for realistic counter noise, so enrollment decisions\n(and hence bits) are insensitive to the measurement protocol's error.\n", stats.Mean(margins))
	return &Result{ID: "measurement", Title: title, Text: b.String()}, nil
}
