// Package fleet is the batch layer of the system: it enrolls and evaluates
// many PUF devices concurrently over a bounded worker pool.
//
// The per-device algorithms live in package core and are strictly serial;
// fleet adds what a verifier facing a device population needs on top of
// them:
//
//   - bounded concurrency (Options.Workers) with results returned in input
//     order, so batch runs stay deterministic regardless of scheduling;
//   - per-device error isolation — a degenerate or poisoned device yields
//     a per-device error in its DeviceResult, never a batch abort (worker
//     panics are recovered into errors the same way);
//   - cancellation via context.Context — dispatch stops at cancellation,
//     in-flight devices finish, and completed work is returned alongside
//     the context error;
//   - per-stage progress counters (metrics.FleetCounters): devices
//     enrolled/failed, pairs kept/rejected by the threshold, bit flips
//     observed during evaluation, and wall-clock per stage;
//   - observability (package obs): per-device latency histograms through
//     the counters' registry, and — with Options.Tracer set — one span per
//     batch stage with a child span per processed device.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ropuf/internal/bits"
	"ropuf/internal/core"
	"ropuf/internal/metrics"
	"ropuf/internal/obs"
	"ropuf/internal/obs/logx"
)

// Device is one fleet member's enrollment-time measurement: per-pair delay
// vectors for every PUF pair on the device.
type Device struct {
	ID    string
	Pairs []core.Pair
	// Mode, when non-zero, overrides Options.Mode for this device.
	Mode core.Mode
}

// Options configures a batch run.
type Options struct {
	// Workers bounds concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// Mode selects Case-1 or Case-2 enrollment (per-device Device.Mode
	// overrides it). Ignored by Evaluate.
	Mode core.Mode
	// Threshold is the enrollment reliability threshold passed to
	// core.Enroll. Ignored by Evaluate.
	Threshold float64
	// Select carries the per-pair selection options (e.g. RequireOddStages).
	// Ignored by Evaluate.
	Select core.Options
	// Counters, when non-nil, receives per-stage progress counts plus
	// per-device latency observations (metrics.MetricDeviceSeconds).
	Counters *metrics.FleetCounters
	// Tracer, when non-nil, emits one span per batch stage and one child
	// span per processed device. A nil tracer costs nothing.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives a Warn record per failed device and an
	// Info summary per batch stage, stamped with the stage span's trace ID
	// when Tracer is also set.
	Logger *slog.Logger
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return logx.Nop()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DeviceResult is the outcome of enrolling one device. Exactly one of
// Enrollment and Err is non-nil once the device has been processed; both
// are nil when cancellation prevented the device from being dispatched.
type DeviceResult struct {
	ID         string
	Enrollment *core.Enrollment
	Err        error
}

// EnrollReport summarizes a batch enrollment. Results is parallel to the
// input device slice.
type EnrollReport struct {
	Results []DeviceResult
	// Enrolled and Failed count processed devices; PairsKept and
	// PairsRejected count their pairs relative to the threshold mask.
	Enrolled, Failed         int
	PairsKept, PairsRejected int
	Elapsed                  time.Duration
}

// Enroll configures every device of the batch concurrently. A per-device
// failure (degenerate pairs, poisoned measurements, threshold too high)
// is recorded in that device's DeviceResult; the batch keeps going. The
// returned error is non-nil only for invalid batch options or context
// cancellation — in the latter case the report still carries all completed
// work.
func Enroll(ctx context.Context, devices []Device, opt Options) (*EnrollReport, error) {
	if len(devices) == 0 {
		return nil, errors.New("fleet: Enroll with no devices")
	}
	if opt.Threshold < 0 {
		return nil, fmt.Errorf("fleet: negative enrollment threshold %g", opt.Threshold)
	}
	for i, d := range devices {
		mode := d.mode(opt)
		if mode != core.Case1 && mode != core.Case2 {
			return nil, fmt.Errorf("fleet: device %d (%s): invalid mode %d", i, d.ID, int(mode))
		}
	}
	start := time.Now()
	ctx, span := opt.Tracer.Start(ctx, "fleet.enroll",
		obs.KV("devices", strconv.Itoa(len(devices))),
		obs.KV("workers", strconv.Itoa(opt.workers())))
	report := &EnrollReport{Results: make([]DeviceResult, len(devices))}
	// One selection Scratch per worker: sort and configuration buffers are
	// reused across every device a worker processes, which is where the
	// enrollment hot path's allocation savings come from.
	scratch := make([]core.Scratch, opt.workers())
	run := func(worker, i int) {
		timeDevice(ctx, opt, "enroll", devices[i].ID, func() error {
			report.Results[i] = enrollOne(devices[i], opt, &scratch[worker])
			return report.Results[i].Err
		})
	}
	err := dispatch(ctx, len(devices), opt.workers(), run)
	report.Elapsed = time.Since(start)
	for i := range report.Results {
		res := &report.Results[i]
		switch {
		case res.Enrollment != nil:
			report.Enrolled++
			kept := res.Enrollment.NumBits()
			report.PairsKept += kept
			report.PairsRejected += len(devices[i].Pairs) - kept
		case res.Err != nil:
			report.Failed++
		}
	}
	if c := opt.Counters; c != nil {
		c.DevicesEnrolled.Add(int64(report.Enrolled))
		c.DevicesFailed.Add(int64(report.Failed))
		c.PairsKept.Add(int64(report.PairsKept))
		c.PairsRejected.Add(int64(report.PairsRejected))
		c.AddStageTime("enroll", report.Elapsed)
	}
	span.SetAttr("enrolled", strconv.Itoa(report.Enrolled))
	span.SetAttr("failed", strconv.Itoa(report.Failed))
	span.End()
	opt.logger().LogAttrs(ctx, slog.LevelInfo, "enroll batch done",
		slog.Int("devices", len(devices)), slog.Int("enrolled", report.Enrolled),
		slog.Int("failed", report.Failed), slog.Duration("elapsed", report.Elapsed))
	return report, err
}

// timeDevice wraps one device's processing with a per-device span, a
// latency observation, and a Warn log on failure. With no tracer, counters,
// or logger configured the only overhead is three nil checks.
func timeDevice(ctx context.Context, opt Options, stage, id string, fn func() error) {
	if opt.Tracer == nil && opt.Counters == nil && opt.Logger == nil {
		_ = fn()
		return
	}
	devCtx, span := opt.Tracer.Start(ctx, "fleet."+stage+".device", obs.KV("device", id))
	start := time.Now()
	err := fn()
	if opt.Counters != nil {
		opt.Counters.ObserveDevice(stage, time.Since(start))
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		opt.logger().LogAttrs(devCtx, slog.LevelWarn, "device failed",
			slog.String("stage", stage), slog.String("device", id), slog.Any("error", err))
	}
	span.End()
}

func (d Device) mode(opt Options) core.Mode {
	if d.Mode != 0 {
		return d.Mode
	}
	return opt.Mode
}

// enrollOne enrolls a single device, converting panics from poisoned input
// into per-device errors so one bad device cannot take down the batch.
func enrollOne(d Device, opt Options, sc *core.Scratch) (res DeviceResult) {
	res.ID = d.ID
	defer func() {
		if p := recover(); p != nil {
			res.Enrollment = nil
			res.Err = fmt.Errorf("fleet: device %s: panic during enrollment: %v", d.ID, p)
		}
	}()
	enr, err := core.EnrollWith(sc, d.Pairs, d.mode(opt), opt.Threshold, opt.Select)
	if err != nil {
		res.Err = fmt.Errorf("fleet: device %s: %w", d.ID, err)
		return res
	}
	res.Enrollment = enr
	return res
}

// EvalJob pairs a device's enrollment with fresh measurements taken under
// one or more environments (e.g. the points of a voltage sweep).
type EvalJob struct {
	ID         string
	Enrollment *core.Enrollment
	// Envs holds one fresh measurement of the device's pairs per
	// environment, in the caller's environment order.
	Envs [][]core.Pair
	// RefEnv selects the environment whose regenerated response serves as
	// the reliability reference (the paper compares sweeps against the
	// nominal-condition evaluation); the reference environment itself is
	// excluded from flip counting. A negative RefEnv compares every
	// environment against the enrolled response instead.
	RefEnv int
}

// EvalResult is the outcome of evaluating one device across its
// environments.
type EvalResult struct {
	ID string
	// Responses holds the regenerated response per environment.
	Responses []*bits.Stream
	// Reliability compares the non-reference responses against the
	// reference (see EvalJob.RefEnv).
	Reliability *metrics.Reliability
	Err         error
}

// EvalReport summarizes a batch evaluation. Results is parallel to the
// input job slice.
type EvalReport struct {
	Results           []EvalResult
	Evaluated, Failed int
	Elapsed           time.Duration
}

// Evaluate regenerates responses for every job concurrently and computes
// per-device reliability. Error isolation and cancellation semantics match
// Enroll; only Options.Workers and Options.Counters are consulted.
func Evaluate(ctx context.Context, jobs []EvalJob, opt Options) (*EvalReport, error) {
	if len(jobs) == 0 {
		return nil, errors.New("fleet: Evaluate with no jobs")
	}
	start := time.Now()
	ctx, span := opt.Tracer.Start(ctx, "fleet.evaluate",
		obs.KV("jobs", strconv.Itoa(len(jobs))),
		obs.KV("workers", strconv.Itoa(opt.workers())))
	report := &EvalReport{Results: make([]EvalResult, len(jobs))}
	run := func(_, i int) {
		timeDevice(ctx, opt, "evaluate", jobs[i].ID, func() error {
			report.Results[i] = evalOne(jobs[i])
			return report.Results[i].Err
		})
	}
	err := dispatch(ctx, len(jobs), opt.workers(), run)
	report.Elapsed = time.Since(start)
	var flips int64
	for _, res := range report.Results {
		switch {
		case res.Err != nil:
			report.Failed++
		case res.Reliability != nil:
			report.Evaluated++
			flips += int64(res.Reliability.Flips)
		}
	}
	if c := opt.Counters; c != nil {
		c.Evaluations.Add(int64(report.Evaluated))
		c.EvalErrors.Add(int64(report.Failed))
		c.BitFlips.Add(flips)
		c.AddStageTime("evaluate", report.Elapsed)
	}
	span.SetAttr("evaluated", strconv.Itoa(report.Evaluated))
	span.SetAttr("failed", strconv.Itoa(report.Failed))
	span.End()
	opt.logger().LogAttrs(ctx, slog.LevelInfo, "evaluate batch done",
		slog.Int("jobs", len(jobs)), slog.Int("evaluated", report.Evaluated),
		slog.Int("failed", report.Failed), slog.Duration("elapsed", report.Elapsed))
	return report, err
}

func evalOne(j EvalJob) (res EvalResult) {
	res.ID = j.ID
	defer func() {
		if p := recover(); p != nil {
			res = EvalResult{ID: j.ID, Err: fmt.Errorf("fleet: device %s: panic during evaluation: %v", j.ID, p)}
		}
	}()
	if j.Enrollment == nil {
		res.Err = fmt.Errorf("fleet: device %s: no enrollment", j.ID)
		return res
	}
	if len(j.Envs) == 0 {
		res.Err = fmt.Errorf("fleet: device %s: no environments to evaluate", j.ID)
		return res
	}
	if j.RefEnv >= len(j.Envs) {
		res.Err = fmt.Errorf("fleet: device %s: reference environment %d of %d", j.ID, j.RefEnv, len(j.Envs))
		return res
	}
	res.Responses = make([]*bits.Stream, len(j.Envs))
	for e, pairs := range j.Envs {
		resp, err := j.Enrollment.Evaluate(pairs)
		if err != nil {
			res.Responses = nil
			res.Err = fmt.Errorf("fleet: device %s: environment %d: %w", j.ID, e, err)
			return res
		}
		res.Responses[e] = resp
	}
	ref := j.Enrollment.Response
	if j.RefEnv >= 0 {
		ref = res.Responses[j.RefEnv]
	}
	var regen []*bits.Stream
	for e, r := range res.Responses {
		if e == j.RefEnv {
			continue
		}
		regen = append(regen, r)
	}
	rel, err := metrics.ComputeReliability(ref, regen)
	if err != nil {
		res.Err = fmt.Errorf("fleet: device %s: %w", j.ID, err)
		return res
	}
	res.Reliability = rel
	return res
}

// dispatch is Dispatch without a prepare hook (the enroll/evaluate batch
// paths need none).
func dispatch(ctx context.Context, n, workers int, run func(worker, idx int)) error {
	return Dispatch(ctx, n, workers, nil, run)
}

// Dispatch feeds job indices 0..n-1 to a bounded worker pool. run receives
// the worker's index alongside the job index so callers can maintain
// per-worker scratch state without synchronization. prepare, when non-nil,
// runs serially in the dispatching goroutine, in strictly increasing index
// order, immediately before the job is handed to a worker — the hook batch
// generators use to draw per-job RNG seeds in the exact serial stream
// order (rngx.RNG.SplitSeed) while the work itself fans out. Dispatch
// stops dispatching once ctx is cancelled (in-flight jobs finish, prepared
// but undelivered jobs are dropped) and returns the context's error, if
// any.
func Dispatch(ctx context.Context, n, workers int, prepare func(idx int), run func(worker, idx int)) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				run(worker, i)
			}
		}(w)
	}
dispatching:
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		if prepare != nil {
			prepare(i)
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatching
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("fleet: batch cancelled: %w", err)
	}
	return nil
}
