package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// KV builds an Attr.
func KV(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanContext identifies one span inside one distributed trace. Both IDs
// are lowercase hex: 32 characters for the trace, 16 for the span, matching
// the W3C Trace Context encoding so the pair can travel in a `traceparent`
// header unchanged (see propagate.go).
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both IDs are well-formed and non-zero.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// isHexID reports whether s is exactly n lowercase hex digits and not all
// zeros (the W3C invalid sentinel).
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	nonzero := false
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			nonzero = true
		}
	}
	return nonzero
}

// newTraceID mints a random 128-bit trace ID. math/rand/v2's global
// generator is seeded per process and safe for concurrent use, so IDs from
// independent processes do not collide in practice — which is what lets
// `ropuf tracestat` stitch JSONL files from different processes.
func newTraceID() string {
	for {
		hi, lo := mrand.Uint64(), mrand.Uint64()
		if hi|lo != 0 {
			return fmt.Sprintf("%016x%016x", hi, lo)
		}
	}
}

// newSpanID mints a random non-zero 64-bit span ID.
func newSpanID() string {
	for {
		if v := mrand.Uint64(); v != 0 {
			return fmt.Sprintf("%016x", v)
		}
	}
}

// SpanEvent is the record a finished span emits to its sink, and the JSONL
// wire format `-trace-out` files carry. ParentID is empty for root spans;
// a non-empty ParentID may resolve to a span in another process's file
// when the trace crossed a `traceparent` hop.
type SpanEvent struct {
	TraceID  string            `json:"trace_id"`
	ID       string            `json:"span_id"`
	ParentID string            `json:"parent_span_id,omitempty"`
	Service  string            `json:"service,omitempty"`
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Start    time.Time         `json:"start"`
	// DurationNS is the span's wall-clock length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
}

// Duration returns the span length as a time.Duration.
func (e SpanEvent) Duration() time.Duration { return time.Duration(e.DurationNS) }

// SpanSink receives finished spans. Implementations must be safe for
// concurrent Emit calls.
type SpanSink interface {
	Emit(SpanEvent)
}

// Tracer mints nested spans and routes finished ones to a sink. A nil
// *Tracer is a valid disabled tracer: Start returns the context unchanged
// and a nil span whose methods no-op, so instrumented code needs no guards.
type Tracer struct {
	sink    SpanSink
	service string
	// now is swappable for tests; nil means time.Now.
	now func() time.Time
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithService stamps every emitted span with the given service name, so
// multi-process trace files identify which process each span ran in.
func WithService(name string) TracerOption {
	return func(t *Tracer) { t.service = name }
}

// NewTracer returns a tracer emitting to sink.
func NewTracer(sink SpanSink, opts ...TracerOption) *Tracer {
	if sink == nil {
		panic("obs: NewTracer with nil sink")
	}
	t := &Tracer{sink: sink}
	for _, o := range opts {
		o(t)
	}
	return t
}

func (t *Tracer) clock() time.Time {
	if t.now != nil {
		return t.now()
	}
	return time.Now()
}

// Span is one timed operation. End emits it to the tracer's sink; a span
// may be ended once, extra End calls no-op. Spans are not safe for
// concurrent mutation (one goroutine owns a span), matching how they are
// used: each worker starts and ends its own.
type Span struct {
	tracer   *Tracer
	traceID  string
	id       string
	parentID string
	name     string
	attrs    []Attr
	start    time.Time
	ended    atomic.Bool
}

type spanCtxKey struct{}
type remoteCtxKey struct{}

// Start begins a span named name. The parent is resolved in priority
// order: a live span already in ctx, then a remote SpanContext placed by
// ContextWithRemote (an extracted `traceparent` hop), else the span roots
// a fresh trace. The returned context carries the new span so nested Start
// calls chain. Ending a parent before its children is legal — each span
// emits independently at its own End, keeping its ParentID.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		id:     newSpanID(),
		name:   name,
		attrs:  attrs,
		start:  t.clock(),
	}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.traceID, s.parentID = parent.traceID, parent.id
	} else if rc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && rc.Valid() {
		s.traceID, s.parentID = rc.TraceID, rc.SpanID
	} else {
		s.traceID = newTraceID()
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Context returns the span's trace/span ID pair. The zero SpanContext is
// returned for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.id}
}

// ContextWithRemote marks ctx as continuing the given remote trace: the
// next root span started under it adopts sc's trace ID and parents itself
// to sc's span. An invalid sc leaves ctx unchanged, so a malformed
// `traceparent` header falls back to a fresh root trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// SpanContextOf reports the trace/span identity carried by ctx: the live
// span if one is open, else a remote context from ContextWithRemote. Used
// by header injection (propagate.go) and log stamping (logx).
func SpanContextOf(ctx context.Context) (SpanContext, bool) {
	if s, ok := ctx.Value(spanCtxKey{}).(*Span); ok && s != nil {
		return s.Context(), true
	}
	if rc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && rc.Valid() {
		return rc, true
	}
	return SpanContext{}, false
}

// SetAttr adds an annotation. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End stamps the duration and emits the span. Only the first End emits.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	ev := SpanEvent{
		TraceID:    s.traceID,
		ID:         s.id,
		ParentID:   s.parentID,
		Service:    s.tracer.service,
		Name:       s.name,
		Start:      s.start,
		DurationNS: int64(s.tracer.clock().Sub(s.start)),
	}
	if len(s.attrs) > 0 {
		ev.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	s.tracer.sink.Emit(ev)
}

// --- sinks ----------------------------------------------------------------

// JSONLSink writes each span as one JSON line. Writes are serialized by a
// mutex, so one sink can back a whole worker pool.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one line. Encoding errors are swallowed: tracing must never
// fail the traced operation.
func (s *JSONLSink) Emit(ev SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(ev)
}

// RingSink keeps the most recent spans in a fixed-capacity ring buffer.
type RingSink struct {
	mu    sync.Mutex
	buf   []SpanEvent
	next  int
	total int
}

// NewRingSink returns a ring holding the last capacity spans.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		panic("obs: NewRingSink with non-positive capacity")
	}
	return &RingSink{buf: make([]SpanEvent, 0, capacity)}
}

// Emit records one span, evicting the oldest when full.
func (s *RingSink) Emit(ev SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
		return
	}
	s.buf[s.next] = ev
	s.next = (s.next + 1) % cap(s.buf)
}

// Events returns the retained spans, oldest first.
func (s *RingSink) Events() []SpanEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanEvent, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total counts every span ever emitted, including evicted ones.
func (s *RingSink) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
