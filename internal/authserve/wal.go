package authserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// Per-shard write-ahead log. Every mutation (enroll, challenge-consume)
// appends one fixed-format record and — under FsyncAlways — fsyncs before
// the store call returns, making durability O(record) instead of the old
// O(shard) snapshot rewrite. Recovery is snapshot + log replay; a
// background compactor (compact.go) folds a grown log back into the
// snapshot.
//
// # Wire format
//
// A WAL file is a sequence of records, nothing else (no file header):
//
//	offset 0: payload length  uint32 little-endian, in [1, walMaxPayload]
//	offset 4: payload CRC32-C uint32 little-endian (Castagnoli)
//	offset 8: payload
//
// payload:
//
//	offset 0: record type     byte (walRecEnroll | walRecConsume)
//	offset 1: device-ID length uint16 little-endian
//	offset 3: device ID
//	then, for walRecEnroll:  the device's binary core.Enrollment (rest)
//	then, for walRecConsume: pair count uint32le, then count × uint32le indices
//
// # Torn-tail rule
//
// A crash can tear the last record: fewer than 8 header bytes, a length
// running past EOF, a zero length (preallocated/zeroed tail), or a
// checksum mismatch. All of these end the valid prefix — recovery keeps
// every record before the tear, truncates the file to the prefix, and
// appends continue from there. A record whose checksum verifies but whose
// payload does not parse is NOT a tear; it means corruption (or a foreign
// file) beyond what truncation may silently discard, and recovery fails
// loudly instead of dropping committed state.

// FsyncPolicy selects how aggressively the store flushes durability
// writes (WAL appends, snapshot files, and their parent directory).
type FsyncPolicy int

const (
	// FsyncAlways fsyncs every WAL append and snapshot write before the
	// mutating call returns: a kill -9 or power loss never loses an
	// acknowledged mutation. This is the default and the only policy the
	// durability tests certify.
	FsyncAlways FsyncPolicy = iota
	// FsyncOff skips fsync everywhere: writes reach the OS page cache
	// only. A process crash (kill -9) still loses nothing — the kernel
	// has the data — but power loss can. For benchmarks and bulk loads.
	FsyncOff
)

// ParseFsyncPolicy maps the -fsync flag values onto a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("authserve: unknown fsync policy %q (want always or off)", s)
	}
}

func (p FsyncPolicy) String() string {
	if p == FsyncOff {
		return "off"
	}
	return "always"
}

const (
	walRecEnroll  byte = 1 // device ID + binary enrollment (core.AppendBinary)
	walRecConsume byte = 2 // device ID + consumed pair indices

	walHeaderLen  = 8
	walMaxPayload = 64 << 20 // sanity bound; a real record is ≤ a few hundred KB
)

var walTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWALBroken reports a WAL whose tail could not be restored after a
// failed append; further mutations on the shard are refused rather than
// risk acknowledging writes that replay would discard.
var ErrWALBroken = errors.New("authserve: WAL broken, shard mutations disabled")

// walRecord is one decoded log record.
type walRecord struct {
	typ   byte
	id    string
	enr   []byte // walRecEnroll: binary core.Enrollment
	pairs []int  // walRecConsume: consumed pair indices
}

// encodeEnrollRecord builds the payload for a logged enrollment.
func encodeEnrollRecord(id string, enrollment []byte) ([]byte, error) {
	if len(id) > 0xFFFF {
		return nil, fmt.Errorf("authserve: device ID %d bytes, WAL limit 65535", len(id))
	}
	p := make([]byte, 0, 3+len(id)+len(enrollment))
	p = append(p, walRecEnroll)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(id)))
	p = append(p, id...)
	p = append(p, enrollment...)
	return p, nil
}

// encodeConsumeRecord builds the payload for a logged challenge issuance.
func encodeConsumeRecord(id string, pairs []int) ([]byte, error) {
	if len(id) > 0xFFFF {
		return nil, fmt.Errorf("authserve: device ID %d bytes, WAL limit 65535", len(id))
	}
	p := make([]byte, 0, 3+len(id)+4+4*len(pairs))
	p = append(p, walRecConsume)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(id)))
	p = append(p, id...)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(pairs)))
	for _, i := range pairs {
		if i < 0 {
			return nil, fmt.Errorf("authserve: negative pair index %d", i)
		}
		p = binary.LittleEndian.AppendUint32(p, uint32(i))
	}
	return p, nil
}

// decodeWALPayload parses a checksum-verified payload. Errors here are
// corruption, not tears — the caller must fail recovery, not truncate.
func decodeWALPayload(p []byte) (walRecord, error) {
	if len(p) < 3 {
		return walRecord{}, fmt.Errorf("authserve: WAL payload %d bytes, need ≥3", len(p))
	}
	rec := walRecord{typ: p[0]}
	idLen := int(binary.LittleEndian.Uint16(p[1:3]))
	if 3+idLen > len(p) {
		return walRecord{}, fmt.Errorf("authserve: WAL device-ID length %d overruns payload", idLen)
	}
	rec.id = string(p[3 : 3+idLen])
	body := p[3+idLen:]
	switch rec.typ {
	case walRecEnroll:
		rec.enr = body
	case walRecConsume:
		if len(body) < 4 {
			return walRecord{}, errors.New("authserve: WAL consume record missing pair count")
		}
		n := int(binary.LittleEndian.Uint32(body[:4]))
		if len(body[4:]) != 4*n {
			return walRecord{}, fmt.Errorf("authserve: WAL consume record has %d index bytes, count says %d", len(body[4:]), 4*n)
		}
		rec.pairs = make([]int, n)
		for i := range rec.pairs {
			rec.pairs[i] = int(binary.LittleEndian.Uint32(body[4+4*i : 8+4*i]))
		}
	default:
		return walRecord{}, fmt.Errorf("authserve: unknown WAL record type %d", rec.typ)
	}
	return rec, nil
}

// scanWAL walks the raw log bytes, returning every fully-valid record and
// the length of the valid prefix. A torn tail (short header, bad length,
// bad checksum) just ends the scan; a checksum-valid but unparseable
// payload returns an error with the records decoded so far.
func scanWAL(data []byte) (recs []walRecord, valid int64, err error) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < walHeaderLen {
			return recs, int64(off), nil // torn or clean EOF
		}
		plen := int(binary.LittleEndian.Uint32(rest[:4]))
		if plen == 0 || plen > walMaxPayload || walHeaderLen+plen > len(rest) {
			return recs, int64(off), nil // torn length or truncated payload
		}
		payload := rest[walHeaderLen : walHeaderLen+plen]
		if crc32.Checksum(payload, walTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, int64(off), nil // torn payload bytes
		}
		rec, derr := decodeWALPayload(payload)
		if derr != nil {
			return recs, int64(off), derr
		}
		recs = append(recs, rec)
		off += walHeaderLen + plen
	}
}

// wal is one shard's open log file. All methods are called with the
// owning shard's lock held, so there is no internal locking; size is
// published through the store's atomic counters for lock-free reads.
type wal struct {
	f    *os.File
	path string
	size int64
	sync bool // fsync every append (FsyncAlways)

	// broken latches after a failed append whose tail could not be
	// truncated back to the last good record: appending after a torn
	// middle would make replay silently drop everything that follows.
	broken bool

	// onFsync, when set, observes each append's fsync latency.
	onFsync func(time.Duration)

	// failAppends (tests only) makes every append fail after the
	// in-memory mutation, exercising the rollback paths.
	failAppends bool
}

// openWAL opens (creating if absent) a shard's log, truncates any torn
// tail, and returns the recovered records for replay plus how many torn
// bytes were discarded.
func openWAL(path string, policy FsyncPolicy) (w *wal, recs []walRecord, torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("authserve: reading WAL %s: %w", path, err)
	}
	recs, valid, err := scanWAL(data)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("authserve: WAL %s corrupt: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("authserve: opening WAL %s: %w", path, err)
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("authserve: truncating torn WAL tail %s: %w", path, err)
		}
	}
	return &wal{f: f, path: path, size: valid, sync: policy == FsyncAlways}, recs, int64(len(data)) - valid, nil
}

// append writes one record (header + payload in a single write) and, under
// FsyncAlways, fsyncs before returning. On failure it truncates the file
// back to the last committed record so the tail stays clean; if even that
// fails the log is latched broken and every later append returns
// ErrWALBroken.
func (w *wal) append(payload []byte) error {
	if w.broken {
		return ErrWALBroken
	}
	if w.failAppends {
		return errors.New("authserve: WAL append failed (test hook)")
	}
	rec := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, walTable))
	copy(rec[walHeaderLen:], payload)
	if _, err := w.f.Write(rec); err != nil {
		w.restoreTail()
		return fmt.Errorf("authserve: WAL append: %w", err)
	}
	if w.sync {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			// After a failed fsync the kernel may drop the dirty pages;
			// nothing past the last *synced* record can be trusted, but
			// earlier records were each acknowledged only after their own
			// fsync, so truncating this record alone restores the
			// committed prefix.
			w.restoreTail()
			return fmt.Errorf("authserve: WAL fsync: %w", err)
		}
		if w.onFsync != nil {
			w.onFsync(time.Since(start))
		}
	}
	w.size += int64(len(rec))
	return nil
}

// restoreTail truncates back to the last committed record after a failed
// append, latching the log broken if the truncate itself fails.
func (w *wal) restoreTail() {
	if err := w.f.Truncate(w.size); err != nil {
		w.broken = true
	}
}

// reset empties the log after its contents have been folded into a
// durable snapshot (compaction). The truncate is fsynced under the same
// policy as appends: a crash right after reset must not resurrect the
// pre-compaction tail lengths.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		w.broken = true
		return fmt.Errorf("authserve: WAL reset: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.broken = true
			return fmt.Errorf("authserve: WAL reset fsync: %w", err)
		}
	}
	w.size = 0
	return nil
}

func (w *wal) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	return w.f.Close()
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// survives power loss (a rename is durable only once its directory is).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// walPathFor is the log sibling of a shard snapshot path.
func walPathFor(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", shard))
}
