package main

import (
	"strings"
	"testing"
)

func TestReadStreams(t *testing.T) {
	in := "1010\n\n  0111  \n"
	streams, err := readStreams(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 2 {
		t.Fatalf("streams = %d, want 2 (blank lines skipped)", len(streams))
	}
	if streams[0].String() != "1010" || streams[1].String() != "0111" {
		t.Fatalf("parsed %q, %q", streams[0], streams[1])
	}
}

func TestReadStreamsInvalid(t *testing.T) {
	if _, err := readStreams(strings.NewReader("10x1\n")); err == nil {
		t.Fatal("invalid character accepted")
	}
	streams, err := readStreams(strings.NewReader(""))
	if err != nil || len(streams) != 0 {
		t.Fatalf("empty input: %v / %d streams", err, len(streams))
	}
}
