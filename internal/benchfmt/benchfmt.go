// Package benchfmt parses and renders `go test -bench` style measurement
// records. It is shared by cmd/benchjson (which converts benchmark output
// piped through it into a JSON perf record) and `ropuf loadgen` (which
// emits its throughput/latency measurements in the same line format and
// JSON shape, so every perf artifact in the repo — BENCH_fleet.json,
// BENCH_authserve.json — reads identically).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. Zero-valued fields were absent
// from the input line (e.g. B/op without -benchmem). Extra holds custom
// units reported via testing.B.ReportMetric (boards/s, bytes/board, …)
// keyed by unit string; JSON maps render with sorted keys, so records
// still diff cleanly.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Line renders the result as one `go test -bench` output line for the
// given benchmark name, with only the populated "<value> <unit>" pairs.
func (r Result) Line(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\t%d\t%.0f ns/op", name, r.Iterations, r.NsPerOp)
	if r.BytesPerOp != 0 {
		fmt.Fprintf(&b, "\t%.0f B/op", r.BytesPerOp)
	}
	if r.AllocsPerOp != 0 {
		fmt.Fprintf(&b, "\t%.0f allocs/op", r.AllocsPerOp)
	}
	units := make([]string, 0, len(r.Extra))
	for unit := range r.Extra {
		units = append(units, unit)
	}
	sort.Strings(units)
	for _, unit := range units {
		fmt.Fprintf(&b, "\t%s %s", strconv.FormatFloat(r.Extra[unit], 'g', -1, 64), unit)
	}
	return b.String()
}

// Parse scans benchmark lines from r, tees every line to echo, and returns
// the parsed results keyed by benchmark name (the -GOMAXPROCS suffix is
// stripped so keys stay stable across machines).
func Parse(r io.Reader, echo io.Writer) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				// Custom B.ReportMetric units. Units contain no digits, so
				// a unit-looking field is never mistaken for a value.
				if strings.IndexFunc(unit, func(r rune) bool { return r >= '0' && r <= '9' }) >= 0 {
					continue
				}
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
		results[name] = res
	}
	return results, sc.Err()
}

// Marshal renders the results with sorted keys and a trailing newline so
// the file diffs cleanly between runs.
func Marshal(results map[string]Result) ([]byte, error) {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		entry, err := json.Marshal(results[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", name, entry)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
