package authserve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ropuf/internal/auth"
	"ropuf/internal/core"
	"ropuf/internal/fleet"
)

// gateCommitter blocks the wal's committer goroutine inside its first
// onCommit callback until the returned release func is called, recording
// every batch's record count. While the committer is parked, every new
// submit lands in the next open batch — the deterministic way to build a
// multi-record batch without racing the (very fast) commit loop.
func gateCommitter(w *wal) (sizes func() []int, parked <-chan struct{}, release func()) {
	var mu sync.Mutex
	var got []int
	gate := make(chan struct{})
	entered := make(chan struct{})
	var first atomic.Bool
	w.onCommit = func(records int, _, _ int64, _ time.Duration) {
		mu.Lock()
		got = append(got, records)
		mu.Unlock()
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-gate
		}
	}
	sizes = func() []int {
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), got...)
	}
	return sizes, entered, func() { close(gate) }
}

// waitForWaiters polls until n callers are parked on the wal (or fails
// the test): submit increments the counter before the caller can park,
// so reaching n means all n records are in the open batch.
func waitForWaiters(t *testing.T, w *wal, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for w.waiters.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters parked on the WAL", w.waiters.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitBatching pins the core group-commit property: records
// submitted while a commit is in flight share the NEXT commit — one
// write+fsync for all of them — and every waiter still gets a nil
// verdict and a durable record.
func TestGroupCommitBatching(t *testing.T) {
	const queued = 16
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, _, _, err := openWAL(path, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	sizes, parked, release := gateCommitter(w)

	// Record 0 commits alone and parks the committer inside onCommit.
	lead, err := w.submit(mustConsume(t, "lead", []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	<-parked

	// Sixteen appends queue behind the parked committer.
	var wg sync.WaitGroup
	errs := make([]error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.appendSync(mustConsume(t, fmt.Sprintf("dev-%02d", i), []int{i}))
		}(i)
	}
	// lead's waiter (1, unparked only when we wait() below) + the queued.
	waitForWaiters(t, w, queued+1)
	release()
	wg.Wait()
	if err := lead.wait(); err != nil {
		t.Fatalf("lead record verdict: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued record %d verdict: %v", i, err)
		}
	}

	got := sizes()
	if len(got) != 2 || got[0] != 1 || got[1] != queued {
		t.Fatalf("commit batch sizes = %v, want [1 %d] (records queued behind a commit must share one fsync)", got, queued)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// All 17 records are durably on disk, record-aligned.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, valid, err := scanWAL(data)
	if err != nil || len(recs) != queued+1 || valid != int64(len(data)) {
		t.Fatalf("on disk: %d records, valid %d of %d bytes, err %v", len(recs), valid, len(data), err)
	}
}

// TestGroupCommitFlushBarrier pins the compaction barrier: flush must
// not return while any previously submitted record lacks a verdict —
// including a batch already mid-commit — and must return nil once
// everything queued is durable.
func TestGroupCommitFlushBarrier(t *testing.T) {
	w, _, _, err := openWAL(filepath.Join(t.TempDir(), "shard.wal"), FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// Idle log: the barrier is immediate.
	if err := w.flush(); err != nil {
		t.Fatalf("flush on idle WAL: %v", err)
	}

	_, parked, release := gateCommitter(w)
	lead, err := w.submit(mustConsume(t, "lead", []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	<-parked // lead committed; committer parked inside onCommit
	queued, err := w.submit(mustConsume(t, "queued", []int{1}))
	if err != nil {
		t.Fatal(err)
	}

	flushed := make(chan error, 1)
	go func() { flushed <- w.flush() }()
	select {
	case err := <-flushed:
		t.Fatalf("flush returned (%v) while a record had no durability verdict", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case err := <-flushed:
		if err != nil {
			t.Fatalf("flush after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush never returned after the committer resumed")
	}
	if err := lead.wait(); err != nil {
		t.Fatal(err)
	}
	if err := queued.wait(); err != nil {
		t.Fatal(err)
	}
	w.close()
}

// TestGroupCommitFailureFailsWholeBatch pins the failure model: a batch
// whose write fails must fail EVERY record in it (a later record may
// depend on an earlier one), truncate the file back to the committed
// prefix, and latch the log broken for all future work.
func TestGroupCommitFailureFailsWholeBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, _, _, err := openWAL(path, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.appendSync(mustConsume(t, "committed", []int{0})); err != nil {
		t.Fatal(err)
	}
	committed := w.committedSize()

	_, parked, release := gateCommitter(w)
	lead, err := w.submit(mustConsume(t, "lead", []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	<-parked // lead durably written; sabotage below cannot touch it
	a, err := w.submit(mustConsume(t, "batch-a", []int{2}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.submit(mustConsume(t, "batch-b", []int{3}))
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the file descriptor: the queued batch's write must fail.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	release()
	if err := lead.wait(); err != nil {
		t.Fatalf("lead was written before the sabotage, must commit: %v", err)
	}
	errA, errB := a.wait(), b.wait()
	if errA == nil || errB == nil {
		t.Fatalf("batch verdicts = %v / %v, want both failed", errA, errB)
	}
	// The latch: every later submit and flush refuses.
	if _, err := w.submit(mustConsume(t, "late", []int{4})); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("submit after failed commit = %v, want ErrWALBroken", err)
	}
	if err := w.flush(); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("flush after failed commit = %v, want ErrWALBroken", err)
	}
	if got := w.committedSize(); got != committed+int64(walHeaderLen+len(mustConsume(t, "lead", []int{1}))) {
		t.Fatalf("committed size %d after failed batch, want the pre-failure prefix", got)
	}
	w.close()
}

// TestGroupCommitIsolatedRecordFailure pins the PER-RECORD rollback
// granularity the store's callers rely on: when one record of a shared
// batch fails (the test hook models a submit-side failure detected at
// commit), its neighbours' mutations must survive — record k's rollback
// must not roll back k-1 or k+1.
func TestGroupCommitIsolatedRecordFailure(t *testing.T) {
	dir := t.TempDir()
	devices, err := fleet.Synthetic(3, 8, 7, 0x15A)
	if err != nil {
		t.Fatal(err)
	}
	opt := StoreOptions{Shards: 1, Dir: dir, CompactBytes: -1}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sh := store.shards[0]
	victim := devices[1].ID
	sh.wal.failPayload = func(p []byte) bool {
		rec, err := decodeWALPayload(p)
		return err == nil && rec.id == victim
	}
	// Park the committer behind a throwaway enroll so all three racing
	// enrolls below land in one batch.
	_, parked, release := gateCommitter(sh.wal)
	leadDev, err := fleet.Synthetic(4, 8, 7, 0x15B)
	if err != nil {
		t.Fatal(err)
	}
	leadErr := make(chan error, 1)
	go func() {
		_, err := store.Enroll(leadDev[3].ID, leadDev[3].Pairs, core.Case2)
		leadErr <- err
	}()
	<-parked

	errs := make([]error, len(devices))
	var wg sync.WaitGroup
	for i, d := range devices {
		wg.Add(1)
		go func(i int, d fleet.Device) {
			defer wg.Done()
			_, err := store.Enroll(d.ID, d.Pairs, core.Case2)
			errs[i] = err
		}(i, d)
	}
	waitForWaiters(t, sh.wal, 4)
	release()
	wg.Wait()
	if err := <-leadErr; err != nil {
		t.Fatal(err)
	}

	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("neighbour enrolls failed (%v / %v) when only the middle record was injected to fail", errs[0], errs[2])
	}
	if !errors.Is(errs[1], ErrPersist) {
		t.Fatalf("victim enroll = %v, want ErrPersist", errs[1])
	}
	// The victim rolled back alone: unknown in memory AND after replay.
	if _, err := store.Device(victim); !errors.Is(err, auth.ErrUnknownDevice) {
		t.Fatalf("victim after failed record = %v, want ErrUnknownDevice", err)
	}
	sh.wal.failPayload = nil
	store.Close()
	restored, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for _, id := range []string{devices[0].ID, devices[2].ID, leadDev[3].ID} {
		if _, err := restored.Device(id); err != nil {
			t.Fatalf("neighbour %s lost after replay: %v", id, err)
		}
	}
	if _, err := restored.Device(victim); !errors.Is(err, auth.ErrUnknownDevice) {
		t.Fatalf("victim present after replay: %v", err)
	}
}

// TestKill9MidBatchPrefixRecovery pins the widened torn-tail rule for
// group commit: a crash during a multi-record batch write can cut the
// file anywhere, and recovery must keep exactly the record-aligned
// prefix — earlier records of the torn batch included — and keep the
// log appendable.
func TestKill9MidBatchPrefixRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	var frames [][]byte
	var whole []byte
	for i := 0; i < 5; i++ {
		f := walFrame(mustConsume(t, fmt.Sprintf("dev-%d", i), []int{i}))
		frames = append(frames, f)
		whole = append(whole, f...)
	}
	// Records 0-1 were an acknowledged earlier commit; records 2-4 are
	// one in-flight batch the crash cut mid-record-3.
	cut := len(frames[0]) + len(frames[1]) + len(frames[2]) + len(frames[3])/2
	if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	w, recs, torn, err := openWAL(path, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	wantValid := int64(len(frames[0]) + len(frames[1]) + len(frames[2]))
	if len(recs) != 3 || w.committedSize() != wantValid {
		t.Fatalf("recovered %d records, prefix %d; want 3 records, prefix %d (record-aligned cut inside the batch)",
			len(recs), w.committedSize(), wantValid)
	}
	if torn != int64(cut)-wantValid {
		t.Fatalf("torn bytes %d, want %d", torn, int64(cut)-wantValid)
	}
	if recs[2].id != "dev-2" {
		t.Fatalf("third recovered record is %q, want dev-2 (first record of the torn batch)", recs[2].id)
	}
	// The log continues from the truncated prefix.
	if err := w.appendSync(mustConsume(t, "after", []int{9})); err != nil {
		t.Fatal(err)
	}
	w.close()
	data, _ := os.ReadFile(path)
	recs, valid, err := scanWAL(data)
	if err != nil || len(recs) != 4 || valid != int64(len(data)) {
		t.Fatalf("after post-crash append: %d records, valid %d of %d, err %v", len(recs), valid, len(data), err)
	}
}

// TestFsyncOffBypassesGroupCommit pins the -fsync off contract: the
// record is written synchronously to the page cache and the call returns
// with no committer hand-off and no durability wait — structurally (the
// group-commit histogram never fires, no waiter ever parks) and
// behaviorally (a reopen still sees every mutation; the per-mutation
// cost stays within an order of magnitude of a pure in-memory store,
// nowhere near fsync territory).
func TestFsyncOffBypassesGroupCommit(t *testing.T) {
	const n = 64
	devices, err := fleet.Synthetic(n, 8, 7, 0x0FF)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt := StoreOptions{Shards: 2, Dir: dir, CompactBytes: -1, Fsync: FsyncOff}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open(StoreOptions{Shards: 2, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}

	offStart := time.Now()
	for _, d := range devices {
		if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := store.Challenge(d.ID, 2); err != nil {
			t.Fatal(err)
		}
	}
	offDur := time.Since(offStart)
	memStart := time.Now()
	for _, d := range devices {
		if _, err := mem.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := mem.Challenge(d.ID, 2); err != nil {
			t.Fatal(err)
		}
	}
	memDur := time.Since(memStart)

	if got := store.walGroupRecords.Count(); got != 0 {
		t.Fatalf("%d group commits under fsync=off, want 0 (the committer must be bypassed)", got)
	}
	for _, sh := range store.shards {
		if sh.wal.waiters.Load() != 0 || sh.wal.started {
			t.Fatalf("shard %s: waiters=%d started=%v under fsync=off, want no committer at all",
				sh.label, sh.wal.waiters.Load(), sh.wal.started)
		}
	}
	// Loose latency pin: a single fsync is ~100µs+ on any real disk, so
	// paying one per mutation would put the ratio in the tens. An order
	// of magnitude absorbs page-cache writes and scheduler noise.
	if memDur > 0 && offDur > 10*memDur {
		t.Errorf("fsync=off spent %v for what costs %v in memory — is a durability wait hiding on the path?", offDur, memDur)
	}
	// kill -9 (not power loss) durability: the kernel has the bytes.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.NumDevices(); got != n {
		t.Fatalf("restored %d devices under fsync=off, want %d", got, n)
	}
}

// TestConcurrentWALReplayEquivalence is the crash battery's concurrency
// leg: 32 mutators hammer a persistent store (enrolls and challenges
// interleaved, group commits batching arbitrarily), then the store is
// dropped and recovered purely from WAL replay. The recovered state must
// account for every acknowledged mutation exactly: all devices present,
// fresh = bits − consumed per device, and no consumed pair ever
// re-issued.
func TestConcurrentWALReplayEquivalence(t *testing.T) {
	const (
		mutators     = 32
		perMutator   = 4 // devices each mutator owns end to end
		challengeLen = 2
	)
	devices, err := fleet.Synthetic(mutators*perMutator, 8, 7, 0xEC0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt := StoreOptions{Shards: 4, Seed: 9, Dir: dir, CompactBytes: -1}
	store, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	consumed := map[string]map[int]bool{} // device -> pairs acknowledged as consumed
	var wg sync.WaitGroup
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for _, d := range devices[m*perMutator : (m+1)*perMutator] {
				if _, err := store.Enroll(d.ID, d.Pairs, core.Case2); err != nil {
					t.Errorf("enroll %s: %v", d.ID, err)
					return
				}
				for round := 0; round < 2; round++ {
					_, ch, _, err := store.Challenge(d.ID, challengeLen)
					if err != nil {
						t.Errorf("challenge %s: %v", d.ID, err)
						return
					}
					mu.Lock()
					set := consumed[d.ID]
					if set == nil {
						set = map[int]bool{}
						consumed[d.ID] = set
					}
					for _, p := range ch.Pairs {
						set[p] = true
					}
					mu.Unlock()
				}
			}
		}(m)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Crash: no SaveAll, no drain — the WAL is the only survivor.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := Open(opt)
	if err != nil {
		t.Fatalf("replaying concurrent-mutator WAL: %v", err)
	}
	defer restored.Close()
	if got := restored.NumDevices(); got != len(devices) {
		t.Fatalf("restored %d devices, want %d", got, len(devices))
	}
	for _, d := range devices {
		info, err := restored.Device(d.ID)
		if err != nil {
			t.Fatalf("device %s lost: %v", d.ID, err)
		}
		if want := info.Bits - len(consumed[d.ID]); info.Fresh != want {
			t.Fatalf("device %s: fresh=%d, want %d (bits %d − %d acknowledged consumed pairs)",
				d.ID, info.Fresh, want, info.Bits, len(consumed[d.ID]))
		}
	}
	// Drain: nothing consumed pre-crash may be issued again.
	for _, d := range devices {
		for {
			_, ch, _, err := restored.Challenge(d.ID, challengeLen)
			if errors.Is(err, auth.ErrExhausted) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ch.Pairs {
				if consumed[d.ID][p] {
					t.Fatalf("device %s: pair %d re-issued after concurrent replay", d.ID, p)
				}
			}
		}
	}
}

// mustConsume is a test helper for building WAL payloads.
func mustConsume(t *testing.T, id string, pairs []int) []byte {
	t.Helper()
	p, err := encodeConsumeRecord(id, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
