package core

import (
	"sort"

	"ropuf/internal/circuit"
)

// Scratch holds reusable buffers for repeated selections and enrollments.
// The fleet enrollment hot path processes hundreds of thousands of pairs;
// with a per-worker Scratch the sort/index scratch is reused across devices
// and every configuration vector is carved out of a shared arena instead of
// allocated per pair, cutting the allocation count per enrolled device from
// O(pairs) to O(1).
//
// The zero value is ready to use. A Scratch is not safe for concurrent use;
// give each worker its own.
type Scratch struct {
	aIdx, bIdx []int
	sorter     idxSorter
	arena      []bool
}

// arenaBlockBools sizes fresh arena blocks: big enough that a typical
// device's worth of configuration vectors fits in one allocation.
const arenaBlockBools = 2048

// config carves one zeroed n-bool configuration vector out of the arena.
// Handed-out vectors escape into Enrollment results, so the arena is never
// rewound — it only grows by allocating fresh (zeroed) blocks once the
// current block is exhausted.
func (s *Scratch) config(n int) circuit.Config {
	if cap(s.arena)-len(s.arena) < n {
		block := arenaBlockBools
		if n > block {
			block = n
		}
		s.arena = make([]bool, 0, block)
	}
	base := len(s.arena)
	s.arena = s.arena[:base+n]
	// Full-slice expression: the handed-out config's capacity ends at its
	// own length, so appends copy out instead of growing into the arena.
	return circuit.Config(s.arena[base : base+n : base+n])
}

// idxSorter sorts an index slice by ascending backing values. One instance
// is reused through Scratch so repeated sorts stay allocation-free (a
// pointer receiver in a sort.Interface does not allocate per call, unlike
// sort.Slice's closure path).
type idxSorter struct {
	idx  []int
	vals []float64
}

func (s *idxSorter) Len() int           { return len(s.idx) }
func (s *idxSorter) Less(a, b int) bool { return s.vals[s.idx[a]] < s.vals[s.idx[b]] }
func (s *idxSorter) Swap(a, b int)      { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// ascIdx fills idx (reusing its capacity) with the indices of v sorted by
// ascending value and returns it.
func (s *Scratch) ascIdx(idx []int, v []float64) []int {
	if cap(idx) < len(v) {
		idx = make([]int, len(v))
	}
	idx = idx[:len(v)]
	for i := range idx {
		idx[i] = i
	}
	s.sorter.idx, s.sorter.vals = idx, v
	sort.Sort(&s.sorter)
	s.sorter.idx, s.sorter.vals = nil, nil
	return idx
}
