package bits

import (
	"testing"
)

func benchPair(n int) (*Stream, *Stream) {
	a := New(n)
	b := New(n)
	state := uint64(12345)
	next := func() bool {
		state = state*6364136223846793005 + 1442695040888963407
		return state>>40&1 == 1
	}
	for i := 0; i < n; i++ {
		a.Append(next())
		b.Append(next())
	}
	return a, b
}

func benchHD(b *testing.B, n int) {
	b.Helper()
	x, y := benchPair(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustHammingDistance(x, y)
	}
}

func BenchmarkHammingDistance96(b *testing.B)   { benchHD(b, 96) }
func BenchmarkHammingDistance1k(b *testing.B)   { benchHD(b, 1024) }
func BenchmarkHammingDistance100k(b *testing.B) { benchHD(b, 100_000) }

func BenchmarkAppend(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1024)
		for j := 0; j < 1024; j++ {
			s.Append(j&1 == 1)
		}
	}
}

func BenchmarkOnesCount100k(b *testing.B) {
	s, _ := benchPair(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnesCount()
	}
}

func BenchmarkStringRoundtrip1k(b *testing.B) {
	s, _ := benchPair(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromString(s.String()); err != nil {
			b.Fatal(err)
		}
	}
}
