package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"experiment"}); err == nil {
		t.Fatal("experiment without IDs accepted")
	}
	if err := run([]string{"experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment ID accepted")
	}
}

func TestRunFleet(t *testing.T) {
	if err := run([]string{"fleet", "-devices", "8", "-pairs", "8", "-stages", "5", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetBadFlags(t *testing.T) {
	if err := run([]string{"fleet", "-mode", "case3"}); err == nil {
		t.Fatal("unknown fleet mode accepted")
	}
	if err := run([]string{"fleet", "-devices", "0"}); err == nil {
		t.Fatal("zero-device fleet accepted")
	}
	if err := run([]string{"fleet", "-bogus"}); err == nil {
		t.Fatal("unknown fleet flag accepted")
	}
}

func TestRunSingleExperimentWithOut(t *testing.T) {
	dir := t.TempDir()
	old := *outDir
	*outDir = dir
	defer func() { *outDir = old }()
	if err := run([]string{"experiment", "tableV"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tableV.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Configurable PUFs") {
		t.Fatal("written report missing expected content")
	}
}
