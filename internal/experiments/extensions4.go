package experiments

// Fourth extension group: the RO-jitter TRNG (the abstract's "random
// number generation" application) and placement-aware pairing strategies
// (an alternative to the distiller for suppressing systematic variation).

import (
	"fmt"
	"strings"

	"ropuf/internal/bits"
	"ropuf/internal/circuit"
	"ropuf/internal/core"
	"ropuf/internal/dataset"
	"ropuf/internal/entropy"
	"ropuf/internal/nist"
	"ropuf/internal/rngx"
	"ropuf/internal/silicon"
	"ropuf/internal/trng"
)

// TRNG sweeps the jitter-to-period ratio of a ring-oscillator TRNG and
// reports bit quality raw and after conditioning.
func (r *Runner) TRNG() (*Result, error) {
	title := "TRNG (extension) — RO-jitter random number generation"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	die, err := silicon.NewDie(silicon.DefaultParams(), 8, 8, rngx.New(0x54524e47)) // "TRNG"
	if err != nil {
		return nil, err
	}
	ring, err := circuit.NewBuilder(die).BuildRing(5, circuit.DefaultMuxScale, circuit.DefaultWireScale)
	if err != nil {
		return nil, err
	}
	cfg := circuit.AllSelected(5)

	const sample = 1e7 // 10 µs sampling clock
	const rawBits = 16384
	fmt.Fprintf(&b, "5-stage ring, %.0f µs sampling clock, %d raw bits per row.\n\n", sample/1e6, rawBits)
	fmt.Fprintf(&b, "%12s %12s %10s %12s %14s %12s\n",
		"jitter/cyc", "sigma/period", "raw bias", "raw minH", "NIST fails raw", "minH xor8")
	for _, jitter := range []float64{0.5, 2, 10, 40, 120} {
		g, err := trng.New(ring, cfg, silicon.Nominal, sample, jitter, rngx.New(uint64(jitter*1000)))
		if err != nil {
			return nil, err
		}
		raw := g.Bits(rawBits)
		bias := float64(raw.OnesCount())/float64(raw.Len()) - 0.5
		est, err := entropy.MinEntropyPerBit(raw)
		if err != nil {
			return nil, err
		}
		results, err := nist.RunAll(raw, nist.ShortSuite(raw.Len()))
		if err != nil {
			return nil, err
		}
		fails := 0
		for _, res := range results {
			for _, pv := range res.PVs {
				if !pv.Pass() {
					fails++
				}
			}
		}
		folded, err := trng.XORFold(raw, 8)
		if err != nil {
			return nil, err
		}
		festEst, err := entropy.MinEntropyPerBit(folded)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%9.1f ps %12.3f %10.4f %12.3f %14d %12.3f\n",
			jitter, g.AccumulatedSigmaPS()/g.PeriodPS(), bias, est.Min, fails, festEst.Min)
	}
	fmt.Fprintf(&b, "\nReading: entropy turns on once the jitter accumulated per sample\napproaches the ring period; below that, raw bits are structured and even\n8-fold XOR compression cannot fully repair them — sampling slower (or a\nnoisier ring) is the honest fix, as TRNG practice prescribes.\n")
	return &Result{ID: "trng", Title: title, Text: b.String()}, nil
}

// pairingStrategy maps a board's RO delays into PUF pairs under a physical
// pairing discipline.
type pairingStrategy struct {
	name string
	// pick returns the RO indices of pair p's top and bottom rings for
	// n-stage rings.
	pick func(p, n int) (top, bottom []int)
}

func pairingStrategies() []pairingStrategy {
	return []pairingStrategy{
		{
			// The paper's layout: 2n consecutive ROs, first n top.
			name: "adjacent blocks",
			pick: func(p, n int) ([]int, []int) {
				base := p * 2 * n
				top := make([]int, n)
				bottom := make([]int, n)
				for i := 0; i < n; i++ {
					top[i] = base + i
					bottom[i] = base + n + i
				}
				return top, bottom
			},
		},
		{
			// Interleaved: alternating ROs. Looks balanced but gives every
			// stage the SAME one-placement-step gradient offset (the bottom
			// RO always sits one step after the top), so the systematic
			// gradient adds coherently across stages and pairs.
			name: "interleaved",
			pick: func(p, n int) ([]int, []int) {
				base := p * 2 * n
				top := make([]int, n)
				bottom := make([]int, n)
				for i := 0; i < n; i++ {
					top[i] = base + 2*i
					bottom[i] = base + 2*i + 1
				}
				return top, bottom
			},
		},
		{
			// Common-centroid (ABBA): cancels linear gradients exactly.
			name: "common-centroid",
			pick: func(p, n int) ([]int, []int) {
				base := p * 2 * n
				top := make([]int, 0, n)
				bottom := make([]int, 0, n)
				for i := 0; i < 2*n; i++ {
					switch i % 4 {
					case 0, 3:
						if len(top) < n {
							top = append(top, base+i)
						} else {
							bottom = append(bottom, base+i)
						}
					default:
						if len(bottom) < n {
							bottom = append(bottom, base+i)
						} else {
							top = append(top, base+i)
						}
					}
				}
				return top, bottom
			},
		},
	}
}

// Pairing compares physical pairing disciplines on RAW (undistilled) data:
// smarter layouts suppress systematic variation at enrollment time, doing
// part of the distiller's job for free.
func (r *Runner) Pairing() (*Result, error) {
	ds, err := r.VT()
	if err != nil {
		return nil, err
	}
	title := "Pairing (extension) — physical layout vs systematic variation"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "Raw (undistilled) periods, n=%d rings, Case-1 selection, 97 x 96-bit streams.\n\n", streamRingLen)
	fmt.Fprintf(&b, "%-18s %12s %14s %16s\n", "pairing", "bit bias", "NIST rows pass", "uniqueness %")

	boards := ds.NominalBoards()
	if len(boards) > numNominalBoards {
		boards = boards[:numNominalBoards]
	}
	for _, strat := range pairingStrategies() {
		responses := make([]*bits.Stream, len(boards))
		for bi, board := range boards {
			periods, err := board.PeriodsPS(dataset.NominalCondition)
			if err != nil {
				return nil, err
			}
			numPairs, _, err := dataset.GroupBitsPerBoard(len(periods), streamRingLen)
			if err != nil {
				return nil, err
			}
			pairs := make([]core.Pair, numPairs)
			for p := 0; p < numPairs; p++ {
				ti, bi2 := strat.pick(p, streamRingLen)
				alpha := make([]float64, streamRingLen)
				beta := make([]float64, streamRingLen)
				for i := 0; i < streamRingLen; i++ {
					alpha[i] = periods[ti[i]]
					beta[i] = periods[bi2[i]]
				}
				pairs[p] = core.Pair{Alpha: alpha, Beta: beta}
			}
			enr, err := core.Enroll(pairs, core.Case1, 0, core.Options{})
			if err != nil {
				return nil, err
			}
			responses[bi] = enr.Response
		}
		var streams []*bits.Stream
		for i := 0; i+1 < len(responses); i += 2 {
			streams = append(streams, bits.Concat(responses[i], responses[i+1]))
		}
		corpus := bits.Concat(streams...)
		bias := float64(corpus.OnesCount())/float64(corpus.Len()) - 0.5
		rep, err := nist.RunReport(streams, nist.ShortSuite(streams[0].Len()))
		if err != nil {
			return nil, err
		}
		passRows := 0
		for _, row := range rep.Rows {
			if row.Pass >= nist.MinPassCount(row.Total) {
				passRows++
			}
		}
		// Uniqueness across streams.
		var meanHD float64
		pairsN := 0
		for i := 0; i < len(streams); i++ {
			for j := i + 1; j < len(streams); j++ {
				d, err := bits.HammingDistance(streams[i], streams[j])
				if err != nil {
					return nil, err
				}
				meanHD += float64(d)
				pairsN++
			}
		}
		uniq := 100 * meanHD / float64(pairsN) / float64(streams[0].Len())
		fmt.Fprintf(&b, "%-18s %+12.4f %8d of %2d %15.1f%%\n",
			strat.name, bias, passRows, len(rep.Rows), uniq)
	}
	fmt.Fprintf(&b, "\nReading: layout choices matter as much as post-processing. Naive\ninterleaving is a trap — the bottom RO always sits one placement step after\nthe top, so a gradient biases every stage the same way and the bits fail\nNIST even harder than adjacent blocks. Common-centroid (ABBA) pairing\ncancels linear gradients exactly and passes every NIST row on RAW data —\na layout-time complement to the regression distiller, which then only has\nsurface curvature left to remove.\n")
	return &Result{ID: "pairing", Title: title, Text: b.String()}, nil
}
