package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out)
	return out.String(), err
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative boards", []string{"-boards", "-3"}, "-boards must be positive"},
		{"env exceeds boards", []string{"-boards", "3"}, "do not fit in 3 boards"},
		{"env override exceeds boards", []string{"-boards", "10", "-env-boards", "11"}, "do not fit in 10 boards"},
		{"bad env sentinel", []string{"-env-boards", "-2"}, "-env-boards must be >= 0"},
		{"negative shards", []string{"-shards", "-1"}, "-shards must be non-negative"},
		{"unknown format", []string{"-shards", "2", "-format", "xml"}, "unknown shard format"},
		{"bin without shards", []string{"-format", "bin"}, "requires -shards"},
		{"stray argument", []string{"extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := runCLI(t, tc.args...)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err.Error(), tc.want)
			}
		})
	}
}

func TestRunEnvBoardOverrideIsHonored(t *testing.T) {
	// The old CLI silently clamped the default 5 env boards down to -boards;
	// now the fix is explicit: -env-boards makes the small run valid.
	out := filepath.Join(t.TempDir(), "small.csv")
	got, err := runCLI(t, "-boards", "3", "-env-boards", "1", "-out", out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(got, "wrote 3 boards") {
		t.Fatalf("output %q does not report 3 boards", got)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output file: %v", err)
	}
}

func TestRunShardedGenerateAndCheck(t *testing.T) {
	for _, format := range []string{"csv", "bin"} {
		t.Run(format, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "corpus")
			got, err := runCLI(t, "-boards", "6", "-env-boards", "2", "-workers", "3",
				"-shards", "2", "-format", format, "-out", dir)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if !strings.Contains(got, "wrote 6 boards") {
				t.Fatalf("generate output %q does not report 6 boards", got)
			}

			check, err := runCLI(t, "-check", dir)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !strings.Contains(check, "verified 6 boards") {
				t.Fatalf("check output %q does not report 6 boards", check)
			}

			// Flip one byte in a shard: -check must fail loudly.
			shard := filepath.Join(dir, "shard-0001."+format)
			data, err := os.ReadFile(shard)
			if err != nil {
				t.Fatalf("read shard: %v", err)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(shard, data, 0o644); err != nil {
				t.Fatalf("write shard: %v", err)
			}
			if _, err := runCLI(t, "-check", dir); err == nil {
				t.Fatal("check accepted a corrupted shard")
			}
		})
	}
}

func TestRunMetricsAddr(t *testing.T) {
	out := filepath.Join(t.TempDir(), "m.csv")
	got, err := runCLI(t, "-boards", "2", "-env-boards", "0",
		"-metrics-addr", "127.0.0.1:0", "-out", out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(got, "metrics on http://") {
		t.Fatalf("output %q does not announce the metrics server", got)
	}
}

// TestMetricsRegistryHasRuntimeSeries: a scrape of a long-running
// generation must include process runtime health, not just progress
// counters.
func TestMetricsRegistryHasRuntimeSeries(t *testing.T) {
	reg, boards, rows := newMetricsRegistry()
	boards.Inc()
	rows.Add(3)
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"ropuf_datasetgen_boards_total 1",
		"ropuf_datasetgen_rows_total 3",
		"ropuf_runtime_goroutines",
		"ropuf_runtime_heap_alloc_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("registry exposition missing %q:\n%s", want, text)
		}
	}
}
