package trng

import (
	"testing"

	"ropuf/internal/rngx"
)

func TestNewHealthValidation(t *testing.T) {
	for _, h := range []float64{0, -0.5, 1.5} {
		if _, err := NewHealth(h); err == nil {
			t.Errorf("claimed entropy %g accepted", h)
		}
	}
	m, err := NewHealth(1)
	if err != nil {
		t.Fatal(err)
	}
	// For H = 1: RCT cutoff = 21 per the 90B formula.
	if m.RCTCutoff() != 21 {
		t.Fatalf("RCT cutoff %d, want 21 for H=1", m.RCTCutoff())
	}
	if m.APTCutoff() <= 512 || m.APTCutoff() > 1024 {
		t.Fatalf("APT cutoff %d implausible for H=1", m.APTCutoff())
	}
}

func TestHealthCleanOnGoodSource(t *testing.T) {
	m, err := NewHealth(0.9)
	if err != nil {
		t.Fatal(err)
	}
	r := rngx.New(1)
	for i := 0; i < 200_000; i++ {
		m.Feed(r.Bool())
	}
	if !m.Healthy() {
		s, rct, apt := m.Stats()
		t.Fatalf("healthy source flagged: %d samples, %d RCT, %d APT", s, rct, apt)
	}
}

func TestHealthCatchesStuckSource(t *testing.T) {
	m, err := NewHealth(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// A stuck-at-1 source must trip the RCT within the cutoff.
	fired := false
	for i := 0; i < 100; i++ {
		if !m.Feed(true) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("stuck source not caught within 100 samples")
	}
	if m.Healthy() {
		t.Fatal("Healthy() true after a failure")
	}
}

func TestHealthCatchesHeavyBias(t *testing.T) {
	m, err := NewHealth(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// 95% ones: the APT (and likely RCT) must fire well within a few
	// windows even though runs stay below the RCT cutoff occasionally.
	r := rngx.New(2)
	failures := 0
	for i := 0; i < 20_000; i++ {
		if !m.Feed(r.Float64() < 0.95) {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("heavily biased source passed the health tests")
	}
}

func TestHealthLowEntropyClaimTolerant(t *testing.T) {
	// Claiming a low entropy loosens the cutoffs: a mildly biased source
	// should pass under a 0.4-bit claim.
	m, err := NewHealth(0.4)
	if err != nil {
		t.Fatal(err)
	}
	r := rngx.New(3)
	for i := 0; i < 100_000; i++ {
		m.Feed(r.Float64() < 0.7)
	}
	if !m.Healthy() {
		_, rct, apt := m.Stats()
		t.Fatalf("70/30 source failed under 0.4-bit claim (%d RCT, %d APT)", rct, apt)
	}
}

func TestHealthWithGeneratorEndToEnd(t *testing.T) {
	// Healthy TRNG design point feeds clean; a jitter-starved one fails.
	good := testGenerator(t, 1e7, 120, 11)
	m, err := NewHealth(0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		m.Feed(good.Bit())
	}
	if !m.Healthy() {
		_, rct, apt := m.Stats()
		t.Fatalf("good generator failed health tests (%d RCT, %d APT)", rct, apt)
	}

	bad := testGenerator(t, 1e6, 0, 12) // zero jitter: deterministic rotation
	mb, err := NewHealth(0.8)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 50_000; i++ {
		if !mb.Feed(bad.Bit()) {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("deterministic generator passed continuous health tests")
	}
}

func TestHealthStats(t *testing.T) {
	m, err := NewHealth(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Feed(i%2 == 0)
	}
	s, rct, apt := m.Stats()
	if s != 10 || rct != 0 || apt != 0 {
		t.Fatalf("Stats = %d/%d/%d, want 10/0/0", s, rct, apt)
	}
}
