package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestUtilizationExperiment(t *testing.T) {
	res, err := sharedRunner.Utilization()
	if err != nil {
		t.Fatal(err)
	}
	var coopBits, coopFlips, oo8Bits float64
	if _, err := fscanLine(res.Text, "cooperative (multi-corner, ref [2]) %f %f%%", &coopBits, &coopFlips); err != nil {
		t.Fatalf("parse cooperative row: %v", err)
	}
	var oo8Flips float64
	if _, err := fscanLine(res.Text, "1-out-of-8 %f %f%%", &oo8Bits, &oo8Flips); err != nil {
		t.Fatalf("parse 1-out-of-8 row: %v", err)
	}
	// Cooperative recovers far more bits per RO than 1-out-of-8 (the
	// related-work claim of the paper's reference [2]).
	if coopBits <= oo8Bits {
		t.Errorf("cooperative %g bits not above 1-out-of-8 %g", coopBits, oo8Bits)
	}
	// And stays reliable (it selected for stability directly).
	if coopFlips > 1 {
		t.Errorf("cooperative flip rate %.2f%%, expected ~0", coopFlips)
	}
	var confBits, confFlips float64
	if _, err := fscanLine(res.Text, "configurable Case-2 (margin mask) %f %f%%", &confBits, &confFlips); err != nil {
		t.Fatalf("parse configurable row: %v", err)
	}
	if confFlips > 1 {
		t.Errorf("configurable flip rate %.2f%%, expected ~0", confFlips)
	}
}

func TestDistillerExperiment(t *testing.T) {
	res, err := sharedRunner.Distiller()
	if err != nil {
		t.Fatal(err)
	}
	var rawI, resI float64
	if _, err := fscanLine(res.Text, "Moran's I (radius 2, mean over 10 boards): raw %f -> distilled %f", &rawI, &resI); err != nil {
		t.Fatalf("parse Moran's I line: %v", err)
	}
	if rawI < 0.2 {
		t.Errorf("raw Moran's I %.3f too low; systematic variation missing", rawI)
	}
	if resI > 0.05 || resI < -0.1 {
		t.Errorf("distilled Moran's I %.3f; spatial structure survived", resI)
	}
	// Degree 2 and above must pass NIST; degree 0 must not.
	lines := strings.Split(res.Text, "\n")
	passAt := map[int]bool{}
	for _, l := range lines {
		var deg, pass, of int
		var all bool
		if _, err := fmt.Sscanf(strings.TrimSpace(l), "%d %d of %d %t", &deg, &pass, &of, &all); err == nil {
			passAt[deg] = all
		}
	}
	if passAt[0] {
		t.Error("degree-0 distillation passed NIST; systematic variation should persist")
	}
	if !passAt[2] {
		t.Error("degree-2 distillation failed NIST")
	}
	if !passAt[4] {
		t.Error("degree-4 distillation failed NIST")
	}
}

func TestAgingExperiment(t *testing.T) {
	res, err := sharedRunner.Aging()
	if err != nil {
		t.Fatal(err)
	}
	var c2 [5]float64
	if _, err := fscanLine(res.Text, "configurable Case-2 %f%% %f%% %f%% %f%% %f%%", &c2[0], &c2[1], &c2[2], &c2[3], &c2[4]); err != nil {
		t.Fatalf("parse Case-2 row: %v", err)
	}
	var trad [5]float64
	if _, err := fscanLine(res.Text, "traditional %f%% %f%% %f%% %f%% %f%%", &trad[0], &trad[1], &trad[2], &trad[3], &trad[4]); err != nil {
		t.Fatalf("parse traditional row: %v", err)
	}
	// Configurable must age strictly better than traditional at 10 years.
	if c2[3] >= trad[3] && trad[3] > 0 {
		t.Errorf("Case-2 flips %.2f%% not below traditional %.2f%% at 10y", c2[3], trad[3])
	}
	// Traditional flip rate must be monotone-ish in age (allow equality).
	for i := 1; i < len(trad); i++ {
		if trad[i] < trad[i-1]-1e-9 {
			t.Errorf("traditional aging flips not monotone: %v", trad)
			break
		}
	}
}

func TestModelingExperiment(t *testing.T) {
	res, err := sharedRunner.Modeling()
	if err != nil {
		t.Fatal(err)
	}
	// Parse the accuracy table: accuracy must grow with training size and
	// end well above chance.
	var sizes []int
	var accs []float64
	for _, l := range strings.Split(res.Text, "\n") {
		var n int
		var a float64
		if _, err := fmt.Sscanf(strings.TrimSpace(l), "%d %f%%", &n, &a); err == nil {
			sizes = append(sizes, n)
			accs = append(accs, a)
		}
	}
	if len(sizes) < 4 {
		t.Fatalf("parsed only %d table rows", len(sizes))
	}
	if accs[len(accs)-1] < 90 {
		t.Errorf("final modeling accuracy %.1f%%, expected the attack to succeed", accs[len(accs)-1])
	}
	if accs[0] > accs[len(accs)-1] {
		t.Errorf("accuracy did not grow with training data: %v", accs)
	}
}
