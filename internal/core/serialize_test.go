package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestEnrollmentSaveLoadRoundtrip(t *testing.T) {
	pairs := devicePairs(42, 32, 7)
	for _, mode := range []Mode{Case1, Case2} {
		orig, err := Enroll(pairs, mode, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadEnrollment(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Mode != orig.Mode || loaded.Threshold != orig.Threshold {
			t.Fatalf("%v: metadata changed in roundtrip", mode)
		}
		if !loaded.Response.Equal(orig.Response) {
			t.Fatalf("%v: response changed in roundtrip", mode)
		}
		if len(loaded.Selections) != len(orig.Selections) {
			t.Fatalf("%v: selection count changed", mode)
		}
		// The loaded enrollment must evaluate identically.
		a, err := orig.Evaluate(pairs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Evaluate(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%v: loaded enrollment evaluates differently", mode)
		}
	}
}

func TestEnrollmentRoundtripWithDegeneratePair(t *testing.T) {
	pairs := []Pair{
		{Alpha: []float64{5, 5}, Beta: []float64{5, 5}}, // degenerate
		{Alpha: []float64{9, 5}, Beta: []float64{5, 5}},
	}
	orig, err := Enroll(pairs, Case1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnrollment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Mask[0] {
		t.Fatal("degenerate pair mask lost in roundtrip")
	}
	regen, err := loaded.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !regen.Equal(orig.Response) {
		t.Fatal("loaded enrollment with masked pair evaluates differently")
	}
}

func TestLoadEnrollmentRejectsCorruption(t *testing.T) {
	pairs := devicePairs(43, 8, 5)
	orig, err := Enroll(pairs, Case2, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	corruptions := []struct {
		name string
		mod  func(string) string
	}{
		{"not json", func(s string) string { return "{nope" }},
		{"bad version", func(s string) string { return strings.Replace(s, `"version": 1`, `"version": 99`, 1) }},
		{"bad mode", func(s string) string { return strings.Replace(s, `"mode": 2`, `"mode": 7`, 1) }},
		{"bad response chars", func(s string) string {
			return strings.Replace(s, `"response": "`, `"response": "x`, 1)
		}},
		{"flipped response bit", func(s string) string {
			i := strings.Index(s, `"response": "`)
			j := i + len(`"response": "`)
			var flipped byte = '1'
			if s[j] == '1' {
				flipped = '0'
			}
			return s[:j] + string(flipped) + s[j+1:]
		}},
	}
	for _, c := range corruptions {
		if _, err := LoadEnrollment(strings.NewReader(c.mod(good))); err == nil {
			t.Errorf("%s: corruption accepted", c.name)
		}
	}
}

func TestLoadEnrollmentRejectsInconsistentMask(t *testing.T) {
	in := `{
	  "version": 1, "mode": 1, "threshold": 0,
	  "selections": [{"x": "101", "y": "101", "margin": 3, "bit": true}],
	  "mask": [true, true],
	  "response": "11"
	}`
	if _, err := LoadEnrollment(strings.NewReader(in)); err == nil {
		t.Fatal("mask/selection length mismatch accepted")
	}
	in2 := `{
	  "version": 1, "mode": 1, "threshold": 0,
	  "selections": [{"x": "101", "y": "10", "margin": 3, "bit": true}],
	  "mask": [true],
	  "response": "1"
	}`
	if _, err := LoadEnrollment(strings.NewReader(in2)); err == nil {
		t.Fatal("x/y config length mismatch accepted")
	}
}

func TestLoadEnrollmentRejectsMixedStageCounts(t *testing.T) {
	// Internally consistent per selection (x/y lengths match, bits agree
	// with the response) but the two selections disagree on the ring's
	// stage count — only the uniform-n check can reject this.
	in := `{
	  "version": 1, "mode": 1, "threshold": 0,
	  "selections": [
	    {"x": "101", "y": "101", "margin": 3, "bit": true},
	    {"x": "1011", "y": "1011", "margin": 2, "bit": true}
	  ],
	  "mask": [true, true],
	  "response": "11"
	}`
	_, err := LoadEnrollment(strings.NewReader(in))
	if err == nil {
		t.Fatal("mixed per-selection stage counts accepted")
	}
	if !strings.Contains(err.Error(), "mixed ring sizes") {
		t.Fatalf("error %q does not explain the mixed stage counts", err)
	}
	// A masked pair with no configuration must stay exempt from the check.
	ok := `{
	  "version": 1, "mode": 1, "threshold": 0,
	  "selections": [
	    {"x": "", "y": "", "margin": 0, "bit": false},
	    {"x": "1011", "y": "1011", "margin": 2, "bit": true}
	  ],
	  "mask": [false, true],
	  "response": "1"
	}`
	if _, err := LoadEnrollment(strings.NewReader(ok)); err != nil {
		t.Fatalf("masked empty selection rejected: %v", err)
	}
}
