package stats

import "math"

// Machine-level constants used by the incomplete gamma routines; these are
// the same tolerances as the cephes library used by the NIST reference
// implementation.
const (
	machEp = 1.1102230246251565e-16 // 2^-53
	maxLog = 709.782712893384       // log(MaxFloat64)
	big    = 4.503599627370496e15
	bigInv = 2.22044604925031308085e-16
)

// Igamc returns the upper (complemented) regularized incomplete gamma
// function Q(a, x) = Γ(a, x)/Γ(a). It is the workhorse behind the
// chi-squared p-values of almost every NIST SP 800-22 test.
func Igamc(a, x float64) float64 {
	if x <= 0 || a <= 0 {
		return 1
	}
	if x < 1 || x < a {
		return 1 - Igam(a, x)
	}
	ax := a*math.Log(x) - x - lgam(a)
	if ax < -maxLog {
		return 0 // underflow
	}
	ax = math.Exp(ax)

	// Continued fraction (Legendre's) evaluated with the modified Lentz
	// method as in cephes.
	var (
		y    = 1 - a
		z    = x + y + 1
		c    = 0.0
		pkm2 = 1.0
		qkm2 = x
		pkm1 = x + 1
		qkm1 = z * x
		ans  = pkm1 / qkm1
		t    float64
	)
	for {
		c++
		y++
		z += 2
		yc := y * c
		pk := pkm1*z - pkm2*yc
		qk := qkm1*z - qkm2*yc
		if qk != 0 {
			r := pk / qk
			t = math.Abs((ans - r) / r)
			ans = r
		} else {
			t = 1
		}
		pkm2, pkm1 = pkm1, pk
		qkm2, qkm1 = qkm1, qk
		if math.Abs(pk) > big {
			pkm2 *= bigInv
			pkm1 *= bigInv
			qkm2 *= bigInv
			qkm1 *= bigInv
		}
		if t <= machEp {
			break
		}
	}
	return ans * ax
}

// Igam returns the lower regularized incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a).
func Igam(a, x float64) float64 {
	if x <= 0 || a <= 0 {
		return 0
	}
	if x > 1 && x > a {
		return 1 - Igamc(a, x)
	}
	ax := a*math.Log(x) - x - lgam(a)
	if ax < -maxLog {
		return 0
	}
	ax = math.Exp(ax)

	// Power series.
	r := a
	c := 1.0
	ans := 1.0
	for {
		r++
		c *= x / r
		ans += c
		if c/ans <= machEp {
			break
		}
	}
	return ans * ax / a
}

// lgam returns log|Γ(x)| via the standard library.
func lgam(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Erfc is the complementary error function (forwarded from math so callers
// only import stats for all special functions used by the test suite).
func Erfc(x float64) float64 { return math.Erfc(x) }

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSF returns the standard normal survival function 1 − Φ(x), computed
// without cancellation for large x.
func NormalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// ChiSquaredSF returns the survival function (upper tail probability) of a
// chi-squared distribution with k degrees of freedom evaluated at x.
func ChiSquaredSF(x float64, k int) float64 {
	if x < 0 {
		return 1
	}
	return Igamc(float64(k)/2, x/2)
}
