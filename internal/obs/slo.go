package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO declares an availability objective over a rolling window: at most
// (1 - Objective) of the requests observed inside Window may be errors.
type SLO struct {
	// Objective is the target success ratio, strictly between 0 and 1
	// (0.99 = at most 1% of requests may fail).
	Objective float64
	// Window is the rolling window the error budget is measured over.
	Window time.Duration
}

// BurnTracker measures how fast an error budget is burning. It is fed by a
// source function returning cumulative (total, errors) request counts —
// typically sums over an existing metric family — and samples that source
// on every Report call, so it needs no background goroutine: polling
// /healthz is what builds the window.
type BurnTracker struct {
	slo    SLO
	source func() (total, errors float64)
	// now is swappable for tests; nil means time.Now.
	now func() time.Time

	mu      sync.Mutex
	samples []burnSample // time-ordered; samples[0] is the window baseline
}

type burnSample struct {
	t             time.Time
	total, errors float64
}

// BurnReport is one rolling-window reading.
type BurnReport struct {
	// Window is the configured rolling window; the actual span covered is
	// at most this (less until the tracker has been alive that long).
	Window time.Duration
	// Total and Errors count the requests and errors observed within the
	// window (deltas of the cumulative source).
	Total, Errors float64
	// ErrorRatio is Errors/Total, 0 when the window saw no traffic.
	ErrorRatio float64
	// BurnRate is ErrorRatio divided by the budget (1 - Objective): 1.0
	// means errors arrive exactly as fast as the budget allows, N means
	// the window's budget is being consumed N times too fast.
	BurnRate float64
}

// NewBurnTracker starts a tracker with a baseline sample taken immediately,
// so the very first Report already covers traffic since construction.
func NewBurnTracker(slo SLO, source func() (total, errors float64)) *BurnTracker {
	if slo.Objective <= 0 || slo.Objective >= 1 {
		panic(fmt.Sprintf("obs: SLO objective %g outside (0, 1)", slo.Objective))
	}
	if slo.Window <= 0 {
		panic("obs: SLO with non-positive window")
	}
	if source == nil {
		panic("obs: NewBurnTracker with nil source")
	}
	b := &BurnTracker{slo: slo, source: source}
	total, errors := source()
	b.samples = append(b.samples, burnSample{t: b.clock(), total: total, errors: errors})
	return b
}

func (b *BurnTracker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// Report samples the source now and returns the window reading. Samples
// older than the window are pruned, except that the most recent
// out-of-window sample is kept as the baseline so the delta always covers
// the full window. Back-to-back calls closer than Window/64 coalesce into
// one sample, bounding memory under aggressive health polling.
func (b *BurnTracker) Report() BurnReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock()
	total, errors := b.source()
	s := burnSample{t: now, total: total, errors: errors}
	if n := len(b.samples); n >= 2 && now.Sub(b.samples[n-2].t) < b.slo.Window/64 {
		b.samples[n-1] = s
	} else {
		b.samples = append(b.samples, s)
	}
	// Advance the baseline: drop samples as long as the next one is still
	// at or beyond the window edge.
	cutoff := now.Add(-b.slo.Window)
	i := 0
	for i+1 < len(b.samples) && !b.samples[i+1].t.After(cutoff) {
		i++
	}
	b.samples = b.samples[i:]

	base := b.samples[0]
	rep := BurnReport{
		Window: b.slo.Window,
		Total:  total - base.total,
		Errors: errors - base.errors,
	}
	if rep.Total > 0 {
		rep.ErrorRatio = rep.Errors / rep.Total
	}
	rep.BurnRate = rep.ErrorRatio / (1 - b.slo.Objective)
	return rep
}
