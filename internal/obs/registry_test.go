package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEmptyRegistryExposition(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry rendered %q, want nothing", b.String())
	}
	snap := NewRegistry().Snapshot()
	if len(snap.Families) != 0 {
		t.Fatalf("empty registry snapshot has %d families", len(snap.Families))
	}
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Requests served.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP requests_total Requests served.\n# TYPE requests_total counter\nrequests_total 5\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().NewCounter("x", "").Add(-1)
}

func TestLabelledSeriesSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("ops_total", "Ops by kind.", "kind")
	v.With("write").Add(2)
	v.With("read").Add(7)
	v.With(`qu"ote\n`).Inc()
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// Series sorted by label value, quote and backslash escaped.
	wantOrder := []string{`ops_total{kind="qu\"ote\\n"} 1`, `ops_total{kind="read"} 7`, `ops_total{kind="write"} 2`}
	idx := -1
	for _, w := range wantOrder {
		j := strings.Index(got, w)
		if j < 0 {
			t.Fatalf("exposition missing %q:\n%s", w, got)
		}
		if j < idx {
			t.Fatalf("series out of order in:\n%s", got)
		}
		idx = j
	}
}

// TestLabelEscapingSpec pins the exposition escaping to the three
// sequences the text format defines: \\ for backslash, \" for quote, \n
// for newline. Everything else — tabs included — passes through raw; the
// old %q-based writer emitted \t, which spec-compliant parsers reject.
func TestLabelEscapingSpec(t *testing.T) {
	cases := []struct{ in, want string }{
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"tab\there", "tab\there"},
		{"héllo-世界", "héllo-世界"},
		{"\x01control", "\x01control"},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.NewGaugeVec("esc", "", "v").With(tc.in).Set(1)
		var b strings.Builder
		if err := r.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		want := `esc{v="` + tc.want + `"} 1`
		if !strings.Contains(b.String(), want) {
			t.Fatalf("escaping %q: exposition missing %q:\n%s", tc.in, want, b.String())
		}
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("queue_depth", "")
	g.Set(4.5)
	g.Add(-1.5)
	if g.Value() != 3 {
		t.Fatalf("Value = %g, want 3", g.Value())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "queue_depth 3\n") {
		t.Fatalf("exposition:\n%s", b.String())
	}
}

func TestRegistrationIdempotentAndMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "help")
	b := r.NewCounter("x_total", "help")
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registration did not return the same series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.NewGauge("x_total", "help")
}

// TestHistogramBucketBoundaries pins the "le" semantics: an observation
// exactly on a bound lands in that bound's bucket (le is <=), one just
// above lands in the next, and values beyond the last bound go to +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "", []float64{0.1, 0.5, 1})
	h.Observe(0.1)           // exactly on the first bound -> le="0.1"
	h.Observe(0.10000000001) // just above -> le="0.5"
	h.Observe(1)             // exactly on the last finite bound -> le="1"
	h.Observe(2)             // beyond -> +Inf
	h.Observe(-1)            // below everything -> le="0.1"
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.1+0.10000000001+1+2-1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	snap := r.Snapshot()
	buckets := snap.Families[0].Series[0].Buckets
	wantCum := []int64{2, 3, 4, 5} // cumulative per bound 0.1, 0.5, 1, +Inf
	for i, want := range wantCum {
		if buckets[i].Count != want {
			t.Fatalf("bucket %d cumulative = %d, want %d (buckets %+v)", i, buckets[i].Count, want, buckets)
		}
	}
	if !math.IsInf(buckets[3].UpperBound, 1) {
		t.Fatalf("terminal bound = %g, want +Inf", buckets[3].UpperBound)
	}

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="0.5"} 3`,
		`lat_bucket{le="1"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_count 5",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestHistogramDefaultBucketsAndVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("stage_seconds", "", nil, "stage")
	v.With("enroll").Observe(0.002)
	v.With("evaluate").Observe(0.2)
	sets := v.LabelSets()
	if len(sets) != 2 || sets[0][0] != "enroll" || sets[1][0] != "evaluate" {
		t.Fatalf("LabelSets = %v", sets)
	}
	if n := len(r.Snapshot().Families[0].Series[0].Buckets); n != len(LatencyBuckets)+1 {
		t.Fatalf("default layout has %d buckets, want %d", n, len(LatencyBuckets)+1)
	}
}

func TestHistogramBadBucketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	NewRegistry().NewHistogram("x", "", []float64{1, 1})
}

func TestCounterFuncSnapshotAndExposition(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.NewCounterFunc("pulled_total", "Pulled on scrape.", func() float64 { n++; return n })
	snap := r.Snapshot()
	if snap.Families[0].Series[0].Value != 42 {
		t.Fatalf("snapshot value = %g, want 42", snap.Families[0].Series[0].Value)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pulled_total 43\n") {
		t.Fatalf("exposition:\n%s", b.String())
	}
}

// TestConcurrentObserveSnapshot hammers one histogram vec and one counter
// from many goroutines while snapshots and expositions run; the race
// detector (make verify) is the real assertion, totals are the sanity
// check.
func TestConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("lat_seconds", "", []float64{0.001, 0.01, 0.1}, "stage")
	c := r.NewCounter("done_total", "")
	const workers, perWorker = 8, 500
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			var b strings.Builder
			_ = r.WriteProm(&b)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stage := []string{"enroll", "evaluate"}[w%2]
			for i := 0; i < perWorker; i++ {
				h.With(stage).Observe(float64(i%200) / 1000)
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	total := int64(0)
	for _, s := range r.Snapshot().Families {
		if s.Name != "lat_seconds" {
			continue
		}
		for _, series := range s.Series {
			total += series.Count
		}
	}
	if total != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", total, workers*perWorker)
	}
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
}
