package flight

import (
	"flag"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildRecorder assembles a deterministic ring: three ticks over a
// counter, a labelled gauge (hostile label value included), and a
// histogram.
func buildRecorder() (*Recorder, *clock) {
	src := &fakeSource{}
	clk := newClock()
	rec := NewRecorder(src.snapshot, Options{Now: clk.now})
	state := func(c float64, g float64, h int64) []Family {
		return []Family{
			counterFam("ropuf_watch_test_requests_total", c),
			{Name: "ropuf_watch_test_depth", Kind: Gauge, Series: []Series{
				{Labels: map[string]string{"queue": `q"1\` + "\n"}, Value: g},
			}},
			histFam("ropuf_watch_test_latency_seconds",
				[]Bucket{{0.01, h}, {0.1, 2 * h}, {math.Inf(1), 2 * h}}, 2*h, float64(h)*0.05),
		}
	}
	src.set(state(0, 1, 0))
	rec.Sample()
	clk.advance(time.Second)
	src.set(state(10, 2, 5))
	rec.Sample()
	clk.advance(time.Second)
	src.set(state(30, 3, 15))
	rec.Sample()
	return rec, clk
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.String()
}

// TestStatsGolden pins the full /v1/stats response bytes: the JSON must
// be bit-stable for a given ring state, since `ropuf watch` and CI diffs
// depend on the format not drifting silently.
func TestStatsGolden(t *testing.T) {
	rec, _ := buildRecorder()
	code, body := get(t, rec.Handler(), "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	golden := filepath.Join("testdata", "stats_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if body != string(want) {
		t.Fatalf("stats JSON drifted from golden.\ngot:\n%s\nwant:\n%s", body, want)
	}
}

func TestStatsQueryParams(t *testing.T) {
	rec, clk := buildRecorder()
	h := rec.Handler()

	// series filter: only the named derived series.
	code, body := get(t, h, "/v1/stats?series=ropuf_watch_test_requests_total:rate")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "ropuf_watch_test_requests_total:rate") ||
		strings.Contains(body, "ropuf_watch_test_depth") {
		t.Fatalf("series filter leaked: %s", body)
	}

	// since as a duration: only the final tick's points remain.
	code, body = get(t, h, "/v1/stats?series=ropuf_watch_test_depth&since=500ms")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if strings.Count(body, "[") != 3 { // series array + 1 point
		t.Fatalf("since=500ms should leave one point: %s", body)
	}
	if !strings.Contains(body, ",3]") {
		t.Fatalf("since window kept the wrong point: %s", body)
	}

	// since as an RFC3339 timestamp.
	since := clk.now().Add(-1500 * time.Millisecond)
	code, body = get(t, h, "/v1/stats?series=ropuf_watch_test_depth&since="+
		since.UTC().Format(time.RFC3339))
	if code != http.StatusOK {
		t.Fatalf("RFC3339 since rejected: %d %s", code, body)
	}

	// garbage since: 400, not a silent full range.
	code, _ = get(t, h, "/v1/stats?since=yesterdayish")
	if code != http.StatusBadRequest {
		t.Fatalf("garbage since answered %d, want 400", code)
	}

	// non-GET: 405.
	req := httptest.NewRequest(http.MethodPost, "/v1/stats", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST answered %d, want 405", rr.Code)
	}
}
