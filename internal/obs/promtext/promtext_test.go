package promtext_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"ropuf/internal/obs"
	"ropuf/internal/obs/flight"
	"ropuf/internal/obs/promtext"
)

func TestParseBasic(t *testing.T) {
	in := `# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{route="verify",code="200"} 42
reqs_total{route="enroll",code="200"} 7
# TYPE depth gauge
depth 3.5
# a stray comment
untyped_thing 1 1700000000000
`
	fams, err := promtext.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Name != "reqs_total" || fams[0].Type != "counter" || fams[0].Help != "Requests." {
		t.Fatalf("family 0: %+v", fams[0])
	}
	if len(fams[0].Samples) != 2 || fams[0].Samples[0].Value != 42 ||
		fams[0].Samples[0].Labels["route"] != "verify" {
		t.Fatalf("counter samples: %+v", fams[0].Samples)
	}
	if fams[1].Name != "depth" || fams[1].Samples[0].Value != 3.5 {
		t.Fatalf("gauge: %+v", fams[1])
	}
	if fams[2].Type != "untyped" || fams[2].Samples[0].Value != 1 {
		t.Fatalf("untyped: %+v", fams[2])
	}
}

func TestParseHistogramGrouping(t *testing.T) {
	in := `# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.01"} 3
lat_seconds_bucket{le="0.1"} 5
lat_seconds_bucket{le="+Inf"} 6
lat_seconds_sum 0.9
lat_seconds_count 6
`
	fams, err := promtext.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("histogram pieces must attach to one family, got %d", len(fams))
	}
	ff, err := promtext.Assemble(fams)
	if err != nil {
		t.Fatal(err)
	}
	if len(ff) != 1 || ff[0].Kind != flight.Histogram || len(ff[0].Series) != 1 {
		t.Fatalf("assembled: %+v", ff)
	}
	s := ff[0].Series[0]
	if s.Count != 6 || s.Sum != 0.9 || len(s.Buckets) != 3 {
		t.Fatalf("series: %+v", s)
	}
	if !math.IsInf(s.Buckets[2].UpperBound, 1) || s.Buckets[2].Count != 6 {
		t.Fatalf("+Inf bucket: %+v", s.Buckets[2])
	}
}

func TestParseSpecialValues(t *testing.T) {
	in := "a +Inf\nb -Inf\nc NaN\n"
	fams, err := promtext.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(fams[0].Samples[0].Value, 1) ||
		!math.IsInf(fams[1].Samples[0].Value, -1) ||
		!math.IsNaN(fams[2].Samples[0].Value) {
		t.Fatalf("specials misparsed: %+v", fams)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"html not metrics", "<html><body>hi</body></html>\n"},
		{"missing value", "reqs_total{route=\"a\"}\n"},
		{"bad value", "reqs_total twelve\n"},
		{"unterminated label value", `reqs_total{route="a 1` + "\n"},
		{"unknown escape", `reqs_total{route="a\t"} 1` + "\n"},
		{"dangling backslash", `reqs_total{route="a\` + "\n"},
		{"label without equals", "reqs_total{route} 1\n"},
		{"bad type", "# TYPE x zebra\n"},
		{"bad timestamp", "x 1 notatime\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 3\nh_sum 1\nh_count 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fams, err := promtext.Parse(strings.NewReader(tc.in))
			if err == nil {
				// bucket-without-le only fails at Assemble time.
				if _, err = promtext.Assemble(fams); err == nil {
					t.Fatalf("parsed garbage without error: %+v", fams)
				}
			}
		})
	}
}

// TestRoundTripHostileLabels is the pin between writer and reader: a
// registry holding label values that exercise every escape (and bytes
// the format leaves alone, like tabs and unicode) must survive
// WriteProm → Parse → Assemble bit-identically. This is the test that
// catches an exposition-side escaping regression.
func TestRoundTripHostileLabels(t *testing.T) {
	hostile := []string{
		`plain`,
		`has"quote`,
		`back\slash`,
		"new\nline",
		`both\"and` + "\n",
		"tab\tchar",
		"unicode-héllo-世界",
		`trailing\`,
		``,
	}
	reg := obs.NewRegistry()
	cv := reg.NewCounterVec("rt_requests_total", "round-trip counter", "val")
	gv := reg.NewGaugeVec("rt_depth", "round-trip gauge", "val")
	hv := reg.NewHistogramVec("rt_lat_seconds", "round-trip histogram",
		[]float64{0.01, 0.1, 1}, "val")
	for i, v := range hostile {
		cv.With(v).Add(int64(i + 1))
		gv.With(v).Set(float64(i) + 0.5)
		for j := 0; j <= i; j++ {
			hv.With(v).Observe(0.05 * float64(j))
		}
	}

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parsing our own exposition: %v\n--- exposition ---\n%s", err, buf.String())
	}
	got, err := promtext.Assemble(fams)
	if err != nil {
		t.Fatal(err)
	}
	want := reg.FlightFamilies()
	normalize(got)
	normalize(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted.\ngot:  %+v\nwant: %+v\n--- exposition ---\n%s",
			got, want, buf.String())
	}
}

// normalize irons out representation differences that carry no meaning:
// nil vs empty label maps and float sums that reparse to the same value.
func normalize(fams []flight.Family) {
	for i := range fams {
		for j := range fams[i].Series {
			if len(fams[i].Series[j].Labels) == 0 {
				fams[i].Series[j].Labels = nil
			}
		}
	}
}

// TestRoundTripUnlabeled covers the no-label exposition forms.
func TestRoundTripUnlabeled(t *testing.T) {
	reg := obs.NewRegistry()
	reg.NewCounter("plain_total", "c").Add(9)
	reg.NewGauge("plain_gauge", "g").Set(-2.25)
	h := reg.NewHistogram("plain_seconds", "h", []float64{0.5, 5})
	h.Observe(0.1)
	h.Observe(7)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	got, err := promtext.Assemble(fams)
	if err != nil {
		t.Fatal(err)
	}
	want := reg.FlightFamilies()
	normalize(got)
	normalize(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted.\ngot:  %+v\nwant: %+v\n%s", got, want, buf.String())
	}
}
