package core

import (
	"testing"
	"testing/quick"

	"ropuf/internal/rngx"
)

func multiVecs(seed uint64, n int) (alpha, beta []float64) {
	r := rngx.New(seed)
	alpha = make([]float64, n)
	beta = make([]float64, n)
	for i := 0; i < n; i++ {
		alpha[i] = 200 + 4*r.Norm()
		beta[i] = 200 + 4*r.Norm()
	}
	return
}

func TestSelectMultiFirstBitMatchesSingle(t *testing.T) {
	alpha, beta := multiVecs(1, 13)
	for _, mode := range []Mode{Case1, Case2} {
		multi, err := SelectMulti(mode, alpha, beta, 4, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		single, err := Select(mode, alpha, beta, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if multi[0].Margin != single.Margin || multi[0].Bit != single.Bit {
			t.Fatalf("%v: first multi bit (m=%.2f b=%v) differs from single (m=%.2f b=%v)",
				mode, multi[0].Margin, multi[0].Bit, single.Margin, single.Bit)
		}
	}
}

func TestSelectMultiDisjointStages(t *testing.T) {
	check := func(seed uint64) bool {
		alpha, beta := multiVecs(seed, 15)
		for _, mode := range []Mode{Case1, Case2} {
			sels, err := SelectMulti(mode, alpha, beta, 8, 0, Options{})
			if err != nil {
				return false
			}
			usedTop := make([]bool, 15)
			usedBottom := make([]bool, 15)
			for _, s := range sels {
				for i := range s.X {
					if s.X[i] {
						if usedTop[i] {
							return false // top stage reused
						}
						usedTop[i] = true
					}
					if s.Y[i] {
						if usedBottom[i] {
							return false // bottom stage reused
						}
						usedBottom[i] = true
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectMultiCase1MarginsNonIncreasing(t *testing.T) {
	alpha, beta := multiVecs(3, 15)
	sels, err := SelectMulti(Case1, alpha, beta, 10, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) < 2 {
		t.Fatalf("expected several bits, got %d", len(sels))
	}
	for i := 1; i < len(sels); i++ {
		if sels[i].Margin > sels[i-1].Margin+1e-9 {
			t.Fatalf("Case-1 margins increased: %.3f after %.3f", sels[i].Margin, sels[i-1].Margin)
		}
	}
}

func TestSelectMultiMarginThresholdStops(t *testing.T) {
	alpha, beta := multiVecs(4, 15)
	all, err := SelectMulti(Case1, alpha, beta, 10, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	thr := all[len(all)-1].Margin + 0.001
	some, err := SelectMulti(Case1, alpha, beta, 10, thr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(some) >= len(all) {
		t.Fatalf("threshold %g did not reduce bit count (%d vs %d)", thr, len(some), len(all))
	}
	for _, s := range some {
		if s.Margin < thr {
			t.Fatalf("selection below threshold: %.3f < %.3f", s.Margin, thr)
		}
	}
}

func TestSelectMultiMaxBits(t *testing.T) {
	alpha, beta := multiVecs(5, 15)
	sels, err := SelectMulti(Case2, alpha, beta, 2, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) > 2 {
		t.Fatalf("maxBits violated: %d selections", len(sels))
	}
}

func TestSelectMultiEvaluateConsistent(t *testing.T) {
	alpha, beta := multiVecs(6, 13)
	sels, err := SelectMulti(Case2, alpha, beta, 5, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sels {
		bit, margin, err := s.Evaluate(alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		if bit != s.Bit || margin != s.Margin {
			t.Fatalf("selection %d: Evaluate disagrees with stored (%.3f/%v vs %.3f/%v)",
				i, margin, bit, s.Margin, s.Bit)
		}
	}
}

func TestSelectMultiValidation(t *testing.T) {
	alpha, beta := multiVecs(7, 5)
	if _, err := SelectMulti(Case1, alpha, beta[:3], 2, 0, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SelectMulti(Case1, alpha, beta, 0, 0, Options{}); err == nil {
		t.Fatal("zero maxBits accepted")
	}
	if _, err := SelectMulti(Case1, alpha, beta, 2, -1, Options{}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := SelectMulti(Case1, nil, nil, 2, 0, Options{}); err == nil {
		t.Fatal("empty vectors accepted")
	}
	if _, err := SelectMulti(Case1, alpha, beta, 2, 1e12, Options{}); err == nil {
		t.Fatal("impossible threshold should yield an error")
	}
}
