package auth

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ropuf/internal/core"
	"ropuf/internal/rngx"
)

// Verifier persistence: an authentication server must survive restarts
// without re-enrolling devices (re-enrollment needs physical access). The
// format embeds each device's core enrollment (its own versioned JSON) plus
// the consumed-challenge bookkeeping.

type verifierJSON struct {
	Version   int          `json:"version"`
	Tolerance float64      `json:"tolerance"`
	Devices   []deviceJSON `json:"devices"`
}

type deviceJSON struct {
	ID         string          `json:"id"`
	Enrollment json.RawMessage `json:"enrollment"`
	Used       []bool          `json:"used"`
}

const verifierVersion = 1

// Save writes the verifier database (all devices, consumed-pair state) to w.
// The RNG state is not persisted; pass a fresh source to LoadVerifier.
func (v *Verifier) Save(w io.Writer) error {
	out := verifierJSON{Version: verifierVersion, Tolerance: v.Tolerance}
	for _, id := range v.DeviceIDs() {
		rec := v.devices[id]
		var buf bytes.Buffer
		if err := rec.Enrollment.Save(&buf); err != nil {
			return fmt.Errorf("auth: saving device %q: %w", id, err)
		}
		out.Devices = append(out.Devices, deviceJSON{
			ID:         id,
			Enrollment: json.RawMessage(buf.Bytes()),
			Used:       rec.used,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadVerifier restores a verifier database written by Save. rng supplies
// the challenge randomness for the restored instance (RNG state is not part
// of the on-disk format).
func LoadVerifier(r io.Reader, rng *rngx.RNG) (*Verifier, error) {
	var in verifierJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("auth: decoding verifier: %w", err)
	}
	if in.Version != verifierVersion {
		return nil, fmt.Errorf("auth: unsupported verifier version %d", in.Version)
	}
	v, err := NewVerifier(in.Tolerance, rng)
	if err != nil {
		return nil, err
	}
	for _, dj := range in.Devices {
		if dj.ID == "" {
			return nil, fmt.Errorf("auth: device with empty ID")
		}
		if _, dup := v.devices[dj.ID]; dup {
			return nil, fmt.Errorf("auth: duplicate device %q", dj.ID)
		}
		enr, err := core.LoadEnrollment(bytes.NewReader(dj.Enrollment))
		if err != nil {
			return nil, fmt.Errorf("auth: device %q enrollment: %w", dj.ID, err)
		}
		if len(dj.Used) != len(enr.Selections) {
			return nil, fmt.Errorf("auth: device %q used-state length %d, enrollment has %d pairs",
				dj.ID, len(dj.Used), len(enr.Selections))
		}
		v.devices[dj.ID] = &DeviceRecord{ID: dj.ID, Enrollment: enr, used: dj.Used}
	}
	return v, nil
}
