package authserve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary enroll wire format. An enrollment body carries every pair's
// per-stage delay vectors — thousands of float64s — and parsing that as
// JSON costs more CPU than the enrollment math itself, so bulk enrollers
// (the loadgen, future fleet importers) may POST /v1/enroll with
// Content-Type application/x-ropuf-enroll instead. The JSON body remains
// the v1 contract and the default; the binary form is an additive,
// semantically identical encoding of EnrollRequest:
//
//	magic 'R' 'E'   version(1)   mode(1: 0=default, 1=case1, 2=case2)
//	idLen(u16) id   nPairs(u32)
//	per pair: nAlpha(u16) alpha f64s...  nBeta(u16) beta f64s...
//
// All integers and floats are little-endian.

// EnrollContentTypeBinary selects the binary enroll encoding on POST
// /v1/enroll.
const EnrollContentTypeBinary = "application/x-ropuf-enroll"

const (
	enrollWireVersion  = 1
	enrollWireMaxID    = math.MaxUint16
	enrollWireMaxPairs = 1 << 20
	enrollWireMaxStage = math.MaxUint16
)

// enrollWireMode maps the wire's mode byte to EnrollRequest.Mode strings
// and back. Index 0 is the empty default (server picks case2).
var enrollWireModes = []string{"", "case1", "case2"}

// AppendEnrollBinary appends the binary encoding of req to dst. It is the
// client-side encoder; the server accepts the result under
// EnrollContentTypeBinary.
func AppendEnrollBinary(dst []byte, req *EnrollRequest) ([]byte, error) {
	modeByte := -1
	for i, m := range enrollWireModes {
		if req.Mode == m {
			modeByte = i
		}
	}
	switch {
	case modeByte < 0:
		return nil, fmt.Errorf("authserve: mode %q has no binary encoding", req.Mode)
	case len(req.ID) > enrollWireMaxID:
		return nil, fmt.Errorf("authserve: device ID of %d bytes exceeds the wire limit", len(req.ID))
	case len(req.Pairs) > enrollWireMaxPairs:
		return nil, fmt.Errorf("authserve: %d pairs exceed the wire limit", len(req.Pairs))
	}
	var scratch [8]byte
	dst = append(dst, 'R', 'E', enrollWireVersion, byte(modeByte))
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(req.ID)))
	dst = append(dst, scratch[:2]...)
	dst = append(dst, req.ID...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(req.Pairs)))
	dst = append(dst, scratch[:4]...)
	appendF64s := func(dst []byte, vs []float64) ([]byte, error) {
		if len(vs) > enrollWireMaxStage {
			return nil, fmt.Errorf("authserve: %d stages exceed the wire limit", len(vs))
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(vs)))
		dst = append(dst, scratch[:2]...)
		for _, v := range vs {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			dst = append(dst, scratch[:8]...)
		}
		return dst, nil
	}
	var err error
	for _, p := range req.Pairs {
		if dst, err = appendF64s(dst, p.Alpha); err != nil {
			return nil, err
		}
		if dst, err = appendF64s(dst, p.Beta); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// decodeEnrollBinary parses a binary enroll body. Errors are client
// errors (400): the framing is length-prefixed throughout, so any
// truncation or oversized count is detected before large allocations.
func decodeEnrollBinary(r io.Reader, req *EnrollRequest) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("authserve: reading enroll body: %w", err)
	}
	if len(data) < 10 || data[0] != 'R' || data[1] != 'E' {
		return fmt.Errorf("authserve: not a binary enroll body")
	}
	if data[2] != enrollWireVersion {
		return fmt.Errorf("authserve: unsupported binary enroll version %d", data[2])
	}
	if int(data[3]) >= len(enrollWireModes) {
		return fmt.Errorf("authserve: unknown binary enroll mode %d", data[3])
	}
	req.Mode = enrollWireModes[data[3]]
	off := 4
	need := func(n int) bool { return len(data)-off >= n }
	if !need(2) {
		return fmt.Errorf("authserve: truncated binary enroll body")
	}
	idLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if !need(idLen) {
		return fmt.Errorf("authserve: truncated binary enroll body")
	}
	req.ID = string(data[off : off+idLen])
	off += idLen
	if !need(4) {
		return fmt.Errorf("authserve: truncated binary enroll body")
	}
	nPairs := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if nPairs > enrollWireMaxPairs {
		return fmt.Errorf("authserve: %d pairs exceed the wire limit", nPairs)
	}
	readF64s := func() ([]float64, error) {
		if !need(2) {
			return nil, fmt.Errorf("authserve: truncated binary enroll body")
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if !need(n * 8) {
			return nil, fmt.Errorf("authserve: truncated binary enroll body")
		}
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		return vs, nil
	}
	req.Pairs = make([]PairWire, nPairs)
	for i := range req.Pairs {
		if req.Pairs[i].Alpha, err = readF64s(); err != nil {
			return err
		}
		if req.Pairs[i].Beta, err = readF64s(); err != nil {
			return err
		}
	}
	if off != len(data) {
		return fmt.Errorf("authserve: %d trailing bytes after binary enroll body", len(data)-off)
	}
	return nil
}
