// Package auth implements challenge–response device authentication on top
// of the configurable RO PUF — the application the paper's introduction
// motivates ("chip authentication").
//
// Enrollment: the verifier measures each device once (trusted environment),
// stores per-pair selections and reference bits in a database, and never
// touches the device's silicon again. Authentication: the verifier sends a
// challenge naming a random subset of the device's PUF pairs; the device
// re-measures exactly those pairs with its frozen configurations and
// returns the bits; the verifier accepts when the Hamming distance to the
// reference is within a noise tolerance.
//
// Each challenge consumes its pair subset (single-use) so a replayed
// response is rejected, and the tolerance trades false accepts against
// false rejects — both measurable with the silicon simulator (see
// examples/authentication).
//
// # Thread safety
//
// A Verifier is NOT safe for concurrent use: Enroll and NewChallenge
// mutate the device map, the per-device used-pair state, and the shared
// RNG, and even the read paths (NumFresh, Verify) race with those
// mutations. Callers that serve many goroutines must serialize access —
// package authserve does exactly that with a sharded store that holds one
// Verifier per shard behind a per-shard lock.
package auth

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ropuf/internal/bits"
	"ropuf/internal/core"
	"ropuf/internal/rngx"
)

// Sentinel errors, matchable with errors.Is; a serving layer maps them to
// protocol-level outcomes (404, 409, ...).
var (
	// ErrUnknownDevice reports an operation on a device ID that was never
	// enrolled.
	ErrUnknownDevice = errors.New("unknown device")
	// ErrDuplicateDevice reports an Enroll for an ID that already exists.
	ErrDuplicateDevice = errors.New("device already enrolled")
	// ErrExhausted reports a challenge request exceeding the device's
	// remaining fresh (unconsumed) pairs.
	ErrExhausted = errors.New("not enough fresh pairs")
)

// DeviceRecord is the verifier's stored state for one enrolled device.
type DeviceRecord struct {
	ID string
	// Enrollment holds per-pair configurations and reference bits.
	Enrollment *core.Enrollment
	// used marks pair indices consumed by past challenges.
	used []bool
}

// Challenge names the PUF pairs a device must evaluate, in order.
type Challenge struct {
	DeviceID string
	Pairs    []int
}

// Verifier is the authentication server: a database of enrolled devices.
// It is not safe for concurrent use; callers that share one (such as
// authserve's store shards) must serialize access.
type Verifier struct {
	// Tolerance is the maximum acceptable Hamming distance between the
	// response and the stored reference bits, as a fraction of the
	// challenge length (e.g. 0.1 accepts up to 10% noisy bits).
	Tolerance float64

	devices map[string]*DeviceRecord
	rng     *rngx.RNG

	// refScratch is reused across Verify calls for the reference bits so
	// the verify hot path does not allocate. Single-threaded use (see
	// type comment) makes one scratch per verifier enough; the stream
	// never escapes a call.
	refScratch bits.Stream
	// freshScratch is the reusable fresh-pair index buffer for
	// NewChallenge; the chosen indices are copied out before returning.
	freshScratch []int
}

// NewVerifier creates a verifier with the given noise tolerance fraction.
func NewVerifier(tolerance float64, rng *rngx.RNG) (*Verifier, error) {
	if math.IsNaN(tolerance) || tolerance < 0 || tolerance >= 0.5 {
		return nil, fmt.Errorf("auth: tolerance %g outside [0, 0.5)", tolerance)
	}
	if rng == nil {
		return nil, errors.New("auth: nil RNG")
	}
	return &Verifier{Tolerance: tolerance, devices: map[string]*DeviceRecord{}, rng: rng}, nil
}

// Enroll registers a device from its measured pairs. The enrollment
// measurement happens once, in a trusted environment.
func (v *Verifier) Enroll(id string, pairs []core.Pair, mode core.Mode) (*DeviceRecord, error) {
	if id == "" {
		return nil, errors.New("auth: empty device ID")
	}
	if _, ok := v.devices[id]; ok {
		return nil, fmt.Errorf("auth: device %q: %w", id, ErrDuplicateDevice)
	}
	enr, err := core.Enroll(pairs, mode, 0, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("auth: enrolling %q: %w", id, err)
	}
	rec := &DeviceRecord{ID: id, Enrollment: enr, used: make([]bool, len(enr.Selections))}
	v.devices[id] = rec
	return rec, nil
}

// Record-level apply/rollback API. A durability layer (package authserve's
// write-ahead log) needs two things the high-level calls don't give it:
// installing an already-built enrollment during log replay without
// re-running the selection algorithm, and undoing an in-memory mutation
// whose durability write failed before anything escaped to the network.

// ApplyEnroll installs a pre-built enrollment with no consumed pairs — the
// replay path for a logged enrollment. Unlike Enroll it never runs the
// selection algorithm; the enrollment is trusted as stored. It is
// idempotent-friendly: re-applying an existing ID fails with
// ErrDuplicateDevice, which a replayer that may see the same record twice
// (snapshot written, log not yet truncated) skips with errors.Is.
func (v *Verifier) ApplyEnroll(id string, enr *core.Enrollment) error {
	if id == "" {
		return errors.New("auth: empty device ID")
	}
	if enr == nil {
		return fmt.Errorf("auth: device %q: nil enrollment", id)
	}
	if len(enr.Mask) != len(enr.Selections) {
		return fmt.Errorf("auth: device %q: mask length %d != selections %d", id, len(enr.Mask), len(enr.Selections))
	}
	if _, ok := v.devices[id]; ok {
		return fmt.Errorf("auth: device %q: %w", id, ErrDuplicateDevice)
	}
	v.devices[id] = &DeviceRecord{ID: id, Enrollment: enr, used: make([]bool, len(enr.Selections))}
	return nil
}

// Unenroll removes a device, reporting whether it existed — the rollback
// for an Enroll whose durability write failed: the client is told to
// retry, so the in-memory record must not survive to 409 that retry.
func (v *Verifier) Unenroll(id string) bool {
	_, ok := v.devices[id]
	delete(v.devices, id)
	return ok
}

// MarkUsed consumes the given pair indices — the replay path for a logged
// challenge issuance. Marking an already-consumed pair is a no-op, so
// replaying a log over a snapshot that already contains its effects
// converges instead of double-counting.
func (v *Verifier) MarkUsed(id string, pairs []int) error {
	rec, ok := v.devices[id]
	if !ok {
		return fmt.Errorf("auth: %w %q", ErrUnknownDevice, id)
	}
	for _, i := range pairs {
		if i < 0 || i >= len(rec.used) {
			return fmt.Errorf("auth: device %q: pair index %d outside [0, %d)", id, i, len(rec.used))
		}
	}
	for _, i := range pairs {
		rec.used[i] = true
	}
	return nil
}

// UnmarkUsed returns pair indices to the fresh pool — the rollback for a
// NewChallenge whose durability write failed. It is only sound when the
// challenge never left the process: the pairs were consumed in memory but
// no bits were exposed, so re-issuing them later leaks nothing.
func (v *Verifier) UnmarkUsed(id string, pairs []int) error {
	rec, ok := v.devices[id]
	if !ok {
		return fmt.Errorf("auth: %w %q", ErrUnknownDevice, id)
	}
	for _, i := range pairs {
		if i < 0 || i >= len(rec.used) {
			return fmt.Errorf("auth: device %q: pair index %d outside [0, %d)", id, i, len(rec.used))
		}
	}
	for _, i := range pairs {
		rec.used[i] = false
	}
	return nil
}

// NumFresh returns how many unconsumed pairs a device still has.
func (v *Verifier) NumFresh(id string) (int, error) {
	rec, ok := v.devices[id]
	if !ok {
		return 0, fmt.Errorf("auth: %w %q", ErrUnknownDevice, id)
	}
	n := 0
	for i, u := range rec.used {
		if !u && rec.Enrollment.Mask[i] {
			n++
		}
	}
	return n, nil
}

// NumDevices returns the number of enrolled devices.
func (v *Verifier) NumDevices() int { return len(v.devices) }

// DeviceIDs lists the enrolled device IDs in sorted order.
func (v *Verifier) DeviceIDs() []string {
	ids := make([]string, 0, len(v.devices))
	for id := range v.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Device returns the stored record for an enrolled device, or
// ErrUnknownDevice. The record is the verifier's live state, not a copy;
// the thread-safety contract of the Verifier covers it.
func (v *Verifier) Device(id string) (*DeviceRecord, error) {
	rec, ok := v.devices[id]
	if !ok {
		return nil, fmt.Errorf("auth: %w %q", ErrUnknownDevice, id)
	}
	return rec, nil
}

// NewChallenge draws a single-use challenge of length k for the device.
// The selected pairs are consumed immediately (even if the authentication
// later fails), so an eavesdropped response cannot be replayed.
func (v *Verifier) NewChallenge(id string, k int) (*Challenge, error) {
	rec, ok := v.devices[id]
	if !ok {
		return nil, fmt.Errorf("auth: %w %q", ErrUnknownDevice, id)
	}
	if k <= 0 {
		return nil, fmt.Errorf("auth: challenge length %d must be positive", k)
	}
	fresh := v.freshScratch[:0]
	for i, u := range rec.used {
		if !u && rec.Enrollment.Mask[i] {
			fresh = append(fresh, i)
		}
	}
	v.freshScratch = fresh
	if len(fresh) < k {
		return nil, fmt.Errorf("auth: device %q has only %d fresh pairs, need %d: %w", id, len(fresh), k, ErrExhausted)
	}
	v.rng.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
	chosen := append([]int(nil), fresh[:k]...)
	for _, i := range chosen {
		rec.used[i] = true
	}
	return &Challenge{DeviceID: id, Pairs: chosen}, nil
}

// referenceBits extracts the stored bits for the challenge's pairs into
// ref, which is reset first. Filling a caller-owned stream keeps Verify
// allocation-free: the reference lives only for one distance computation.
func (v *Verifier) referenceBits(ch *Challenge, ref *bits.Stream) error {
	rec, ok := v.devices[ch.DeviceID]
	if !ok {
		return fmt.Errorf("auth: %w %q", ErrUnknownDevice, ch.DeviceID)
	}
	ref.Reset()
	for _, i := range ch.Pairs {
		if i < 0 || i >= len(rec.Enrollment.Selections) {
			return fmt.Errorf("auth: challenge pair index %d out of range", i)
		}
		ref.Append(rec.Enrollment.Selections[i].Bit)
	}
	return nil
}

// Verify checks a device's response against the stored reference.
// It returns the measured Hamming distance alongside the verdict.
func (v *Verifier) Verify(ch *Challenge, response *bits.Stream) (ok bool, distance int, err error) {
	ref := &v.refScratch
	if err := v.referenceBits(ch, ref); err != nil {
		return false, 0, err
	}
	if response.Len() != ref.Len() {
		return false, 0, fmt.Errorf("auth: response has %d bits, challenge expects %d", response.Len(), ref.Len())
	}
	d, err := bits.HammingDistance(ref, response)
	if err != nil {
		return false, 0, err
	}
	limit := int(v.Tolerance * float64(ref.Len()))
	return d <= limit, d, nil
}

// Prover is the device side: it holds the frozen enrollment configurations
// and answers challenges from fresh measurements.
type Prover struct {
	Enrollment *core.Enrollment
}

// Respond evaluates the challenged pairs against fresh measurements of
// *all* the device's pairs (the measurement interface re-measures the whole
// array; the challenge picks which bits leave the device).
func (p *Prover) Respond(ch *Challenge, fresh []core.Pair) (*bits.Stream, error) {
	if len(fresh) != len(p.Enrollment.Selections) {
		return nil, fmt.Errorf("auth: device measured %d pairs, enrollment has %d", len(fresh), len(p.Enrollment.Selections))
	}
	out := bits.New(len(ch.Pairs))
	for _, i := range ch.Pairs {
		if i < 0 || i >= len(fresh) {
			return nil, fmt.Errorf("auth: challenge pair index %d out of range", i)
		}
		bit, _, err := p.Enrollment.Selections[i].Evaluate(fresh[i].Alpha, fresh[i].Beta)
		if err != nil {
			return nil, err
		}
		out.Append(bit)
	}
	return out, nil
}
