package attack

import (
	"math"
	"testing"
	"testing/quick"

	"ropuf/internal/circuit"
	"ropuf/internal/core"
	"ropuf/internal/rngx"
)

func randomVectors(r *rngx.RNG, n int) (alpha, beta []float64) {
	alpha = make([]float64, n)
	beta = make([]float64, n)
	for i := 0; i < n; i++ {
		alpha[i] = 200 + 5*r.Norm()
		beta[i] = 200 + 5*r.Norm()
	}
	return alpha, beta
}

func TestCountPredictorAbstainsOnEqualCounts(t *testing.T) {
	x, _ := circuit.ParseConfig("1100")
	y, _ := circuit.ParseConfig("0011")
	if _, confident := (CountPredictor{}).Predict(x, y); confident {
		t.Fatal("predictor confident despite equal counts")
	}
	y2, _ := circuit.ParseConfig("0111")
	bit, confident := (CountPredictor{}).Predict(x, y2)
	if !confident || bit {
		t.Fatalf("bottom has more stages: want confident guess bit=false, got %v/%v", bit, confident)
	}
}

func TestEqualCountRuleDefeatsCountPredictor(t *testing.T) {
	r := rngx.New(1)
	var sels []core.Selection
	for i := 0; i < 500; i++ {
		alpha, beta := randomVectors(r, 9)
		s, err := core.SelectCase2(alpha, beta, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sels = append(sels, s)
	}
	res, err := Evaluate(CountPredictor{}, sels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confident != 0 {
		t.Fatalf("predictor made %d confident guesses against equal-count selections", res.Confident)
	}
	if res.Advantage != 0 {
		t.Fatalf("advantage %g against equal-count selections, want 0", res.Advantage)
	}
}

func TestUnconstrainedSelectorLeaks(t *testing.T) {
	r := rngx.New(2)
	var sels []core.Selection
	for i := 0; i < 500; i++ {
		alpha, beta := randomVectors(r, 9)
		s, err := SelectCase2Unconstrained(alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		sels = append(sels, s)
	}
	res, err := Evaluate(CountPredictor{}, sels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.8 {
		t.Fatalf("count predictor accuracy %.2f against unconstrained selector, expected >= 0.8", res.Accuracy())
	}
	if res.Advantage < 0.3 {
		t.Fatalf("advantage %.3f, expected large leak", res.Advantage)
	}
}

func TestUnconstrainedMarginDominatesConstrained(t *testing.T) {
	// Dropping the constraint can only increase the achievable margin.
	check := func(seed uint64) bool {
		r := rngx.New(seed)
		n := 2 + r.Intn(10)
		alpha, beta := randomVectors(r, n)
		u, err := SelectCase2Unconstrained(alpha, beta)
		if err != nil {
			return false
		}
		c, err := core.SelectCase2(alpha, beta, core.Options{})
		if err != nil {
			return false
		}
		return u.Margin >= c.Margin-1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnconstrainedSelectionShape(t *testing.T) {
	// The optimum takes the whole slow ring against the fastest stage of
	// the fast ring.
	alpha := []float64{10, 11, 12}
	beta := []float64{5, 4, 6}
	s, err := SelectCase2Unconstrained(alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	if s.X.Ones() != 3 || s.Y.Ones() != 1 {
		t.Fatalf("selection %s/%s, want all-top vs one-bottom", s.X, s.Y)
	}
	if !s.Y[1] {
		t.Fatal("bottom selection should pick the fastest stage (index 1)")
	}
	if want := 10.0 + 11 + 12 - 4; math.Abs(s.Margin-want) > 1e-12 {
		t.Fatalf("margin %g, want %g", s.Margin, want)
	}
	if !s.Bit {
		t.Fatal("top should be slower")
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(nil, nil); err == nil {
		t.Fatal("nil predictor accepted")
	}
	if _, err := Evaluate(CountPredictor{}, nil); err == nil {
		t.Fatal("empty selection list accepted")
	}
	// Masked selections (nil configs) are skipped.
	if _, err := Evaluate(CountPredictor{}, []core.Selection{{}}); err == nil {
		t.Fatal("all-masked selection list accepted")
	}
}

func TestSelectCase2UnconstrainedValidation(t *testing.T) {
	if _, err := SelectCase2Unconstrained(nil, nil); err == nil {
		t.Fatal("empty vectors accepted")
	}
	if _, err := SelectCase2Unconstrained([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestConfigEntropyBits(t *testing.T) {
	c1, _ := circuit.ParseConfig("10")
	c2, _ := circuit.ParseConfig("01")
	// Two equiprobable configurations: 1 bit.
	h, err := ConfigEntropyBits([]circuit.Config{c1, c2, c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("entropy %g, want 1", h)
	}
	// Constant: 0 bits.
	h, err = ConfigEntropyBits([]circuit.Config{c1, c1})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("entropy %g, want 0", h)
	}
	if _, err := ConfigEntropyBits(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}
