package silicon

import (
	"math"
	"testing"

	"ropuf/internal/rngx"
)

func TestAgingValidate(t *testing.T) {
	if err := (Aging{Years: -1, Activity: 0.5}).Validate(); err == nil {
		t.Error("negative years accepted")
	}
	if err := (Aging{Years: 1, Activity: -0.1}).Validate(); err == nil {
		t.Error("negative activity accepted")
	}
	if err := (Aging{Years: 1, Activity: 1.1}).Validate(); err == nil {
		t.Error("activity > 1 accepted")
	}
	if err := (Aging{Years: 5, Activity: 1}).Validate(); err != nil {
		t.Errorf("valid stress rejected: %v", err)
	}
}

func TestAgingZeroStressIsIdentity(t *testing.T) {
	d := testDie(t, 30)
	for i := 0; i < 10; i++ {
		aged, err := d.AgedDelayPS(i, Nominal, Aging{})
		if err != nil {
			t.Fatal(err)
		}
		if aged != d.DelayPS(i, Nominal) {
			t.Fatalf("device %d: zero stress changed delay", i)
		}
	}
	aged, err := d.AgedDelayPS(0, Nominal, Aging{Years: 10, Activity: 0})
	if err != nil {
		t.Fatal(err)
	}
	if aged != d.DelayPS(0, Nominal) {
		t.Fatal("zero activity should not age the device")
	}
}

func TestAgingSlowsDevices(t *testing.T) {
	d := testDie(t, 31)
	for i := 0; i < 20; i++ {
		fresh := d.DelayPS(i, Nominal)
		aged, err := d.AgedDelayPS(i, Nominal, Aging{Years: 5, Activity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if aged <= fresh {
			t.Fatalf("device %d: aging did not slow the device (%.3f vs %.3f)", i, aged, fresh)
		}
		// Sanity on magnitude: a few percent, not a few hundred.
		if aged/fresh > 1.10 {
			t.Fatalf("device %d: %.1f%% drift after 5y implausible", i, 100*(aged/fresh-1))
		}
	}
}

func TestAgingMonotoneInTime(t *testing.T) {
	d := testDie(t, 32)
	prev := d.DelayPS(0, Nominal)
	for _, years := range []float64{0.5, 1, 2, 5, 10, 20} {
		aged, err := d.AgedDelayPS(0, Nominal, Aging{Years: years, Activity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if aged < prev {
			t.Fatalf("aging not monotone at %g years", years)
		}
		prev = aged
	}
}

func TestAgingSensitivityVariesAcrossDevices(t *testing.T) {
	d := testDie(t, 33)
	stress := Aging{Years: 10, Activity: 1}
	minR, maxR := math.Inf(1), math.Inf(-1)
	for i := 0; i < d.NumDevices(); i++ {
		aged, err := d.AgedDelayPS(i, Nominal, stress)
		if err != nil {
			t.Fatal(err)
		}
		r := aged / d.DelayPS(i, Nominal)
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR-minR < 1e-4 {
		t.Fatalf("aging drift spread %.6g too small; uniform aging cannot flip bits", maxR-minR)
	}
}

func TestAgedDelayAtPSMatchesIndexed(t *testing.T) {
	d := testDie(t, 34)
	stress := Aging{Years: 3, Activity: 0.8}
	for i := 0; i < 10; i++ {
		a, err := d.AgedDelayPS(i, Nominal, stress)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.AgedDelayAtPS(*d.Device(i), Nominal, stress)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("device %d: AgedDelayAtPS disagrees with AgedDelayPS", i)
		}
	}
}

func TestAgedDelayRejectsBadStress(t *testing.T) {
	d, err := NewDie(DefaultParams(), 4, 4, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AgedDelayPS(0, Nominal, Aging{Years: -1}); err == nil {
		t.Fatal("negative stress accepted")
	}
	if _, err := d.AgedDelayAtPS(*d.Device(0), Nominal, Aging{Activity: 2}); err == nil {
		t.Fatal("bad activity accepted")
	}
}
