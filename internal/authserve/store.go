// Package authserve turns the in-process auth.Verifier into a network
// service: a concurrent-safe sharded device store with crash-safe snapshot
// persistence (store.go) and an HTTP JSON API with bounded-queue
// backpressure, per-route metrics/spans, and graceful drain (server.go).
//
// # Concurrency model
//
// auth.Verifier is documented as not safe for concurrent use, so the store
// never shares one across goroutines. Devices are partitioned by an FNV-1a
// hash of their ID into N shards; each shard owns one Verifier (plus the
// outstanding-challenge table for its devices) behind its own RWMutex.
// Operations on different shards never contend; operations on one shard
// serialize, which is exactly the Verifier's contract.
//
// # Durability model
//
// With a data directory configured, every mutation (enroll, challenge
// issuance) rewrites the owning shard's snapshot — auth.Save output
// written to a temp file and renamed into place, so a crash leaves either
// the old or the new snapshot, never a torn one — *before* the call
// returns. Consumed-pair state is therefore durable by the time a
// challenge reaches the network: a device re-challenged after a crash can
// never be asked to re-expose bits it already revealed. Outstanding
// challenge IDs are deliberately NOT persisted: a restart invalidates
// every issued-but-unverified challenge, so responses to pre-crash
// challenges are rejected.
package authserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"ropuf/internal/auth"
	"ropuf/internal/bits"
	"ropuf/internal/core"
	"ropuf/internal/rngx"
)

// ErrUnknownChallenge reports a verify against a challenge ID that was
// never issued, was already consumed by a previous verify, or was
// invalidated by a server restart. The three cases are indistinguishable
// on purpose: a replayed response must learn nothing.
var ErrUnknownChallenge = errors.New("authserve: unknown or already-used challenge")

// StoreOptions configures Open.
type StoreOptions struct {
	// Tolerance is the accepted Hamming-distance fraction (see
	// auth.Verifier.Tolerance). Defaults to 0.10.
	Tolerance float64
	// Shards is the number of lock shards; defaults to 16.
	Shards int
	// Dir, when non-empty, enables snapshot persistence in that directory
	// (created if absent). Empty means in-memory only.
	Dir string
	// Seed feeds the deterministic RNG used for challenge pair selection
	// and challenge IDs. Defaults to 1; serving binaries should pass a
	// random seed (see cmd/ropuf serve).
	Seed uint64
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Tolerance == 0 {
		o.Tolerance = 0.10
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DeviceInfo is a point-in-time summary of one enrolled device.
type DeviceInfo struct {
	ID          string
	Pairs       int // total measured pairs
	Bits        int // usable (unmasked) pairs
	Fresh       int // pairs still available for challenges
	Outstanding int // issued-but-unverified challenges
}

// Store is the concurrent device database behind the HTTP API.
type Store struct {
	opt    StoreOptions
	shards []*shard
	// snapshotFailures counts persistLocked errors; /healthz degrades when
	// failures land inside its rolling window (the store keeps serving from
	// memory, but durability is compromised).
	snapshotFailures atomic.Int64
}

// SnapshotFailures returns the cumulative count of failed shard snapshot
// writes since the store was opened.
func (s *Store) SnapshotFailures() int64 { return s.snapshotFailures.Load() }

// persist snapshots one shard (whose lock the caller holds), counting
// failures for health reporting.
func (s *Store) persist(sh *shard) error {
	err := sh.persistLocked()
	if err != nil {
		s.snapshotFailures.Add(1)
	}
	return err
}

type shard struct {
	mu          sync.RWMutex
	v           *auth.Verifier
	nonceRNG    *rngx.RNG
	outstanding map[string]*auth.Challenge // challenge ID -> issued challenge
	path        string                     // snapshot file; "" = persistence off
}

type manifestJSON struct {
	Version   int     `json:"version"`
	Shards    int     `json:"shards"`
	Tolerance float64 `json:"tolerance"`
}

const manifestVersion = 1

// Open creates the store, loading any existing shard snapshots from
// opt.Dir. The shard count and tolerance are fixed at first creation (they
// determine device placement and the meaning of stored verdicts); opening
// an existing directory with different options fails.
func Open(opt StoreOptions) (*Store, error) {
	opt = opt.withDefaults()
	s := &Store{opt: opt, shards: make([]*shard, opt.Shards)}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("authserve: data dir: %w", err)
		}
		if err := s.checkManifest(); err != nil {
			return nil, err
		}
	}
	parent := rngx.New(opt.Seed)
	for i := range s.shards {
		sh := &shard{
			nonceRNG:    parent.Split(),
			outstanding: make(map[string]*auth.Challenge),
		}
		if opt.Dir != "" {
			sh.path = filepath.Join(opt.Dir, fmt.Sprintf("shard-%04d.json", i))
		}
		if sh.path != "" {
			if f, err := os.Open(sh.path); err == nil {
				v, lerr := auth.LoadVerifier(f, parent.Split())
				f.Close()
				if lerr != nil {
					return nil, fmt.Errorf("authserve: loading %s: %w", sh.path, lerr)
				}
				if v.Tolerance != opt.Tolerance {
					return nil, fmt.Errorf("authserve: %s has tolerance %g, store wants %g", sh.path, v.Tolerance, opt.Tolerance)
				}
				sh.v = v
			} else if !errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("authserve: loading %s: %w", sh.path, err)
			}
		}
		if sh.v == nil {
			v, err := auth.NewVerifier(opt.Tolerance, parent.Split())
			if err != nil {
				return nil, fmt.Errorf("authserve: %w", err)
			}
			sh.v = v
		}
		s.shards[i] = sh
	}
	return s, nil
}

// checkManifest validates an existing manifest against the options, or
// writes a fresh one for a new data directory.
func (s *Store) checkManifest() error {
	path := filepath.Join(s.opt.Dir, "manifest.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		m := manifestJSON{Version: manifestVersion, Shards: s.opt.Shards, Tolerance: s.opt.Tolerance}
		return atomicWriteJSON(path, m)
	}
	if err != nil {
		return fmt.Errorf("authserve: manifest: %w", err)
	}
	var m manifestJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("authserve: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("authserve: unsupported manifest version %d", m.Version)
	}
	if m.Shards != s.opt.Shards {
		return fmt.Errorf("authserve: data dir has %d shards, store configured for %d", m.Shards, s.opt.Shards)
	}
	if m.Tolerance != s.opt.Tolerance {
		return fmt.Errorf("authserve: data dir has tolerance %g, store configured for %g", m.Tolerance, s.opt.Tolerance)
	}
	return nil
}

// shardFor routes a device ID to its owning shard.
func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Tolerance returns the store's accepted Hamming-distance fraction.
func (s *Store) Tolerance() float64 { return s.opt.Tolerance }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Enroll registers a device and, with persistence enabled, makes the
// enrollment durable before returning.
func (s *Store) Enroll(id string, pairs []core.Pair, mode core.Mode) (DeviceInfo, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, err := sh.v.Enroll(id, pairs, mode)
	if err != nil {
		return DeviceInfo{}, err
	}
	if err := s.persist(sh); err != nil {
		// The enrollment is in memory but not durable; surface the failure
		// so the client re-enrolls rather than trusting a lost record.
		return DeviceInfo{}, err
	}
	fresh, _ := sh.v.NumFresh(id)
	return DeviceInfo{
		ID:    id,
		Pairs: len(rec.Enrollment.Selections),
		Bits:  rec.Enrollment.NumBits(),
		Fresh: fresh,
	}, nil
}

// Challenge draws a single-use challenge of length k and returns its
// one-time ID. The consumed-pair state is durable before the challenge is
// returned; the ID itself is memory-only and dies with the process.
func (s *Store) Challenge(id string, k int) (string, *auth.Challenge, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch, err := sh.v.NewChallenge(id, k)
	if err != nil {
		return "", nil, err
	}
	if err := s.persist(sh); err != nil {
		// Pairs are consumed in memory but the consumption is not durable;
		// withhold the challenge rather than risk re-issuing those pairs
		// after a crash.
		return "", nil, err
	}
	nonce := fmt.Sprintf("%016x%016x", sh.nonceRNG.Uint64(), sh.nonceRNG.Uint64())
	sh.outstanding[nonce] = ch
	return nonce, ch, nil
}

// Verify checks a response against the outstanding challenge, consuming
// the challenge ID whatever the verdict. limit is the largest accepted
// Hamming distance at the store's tolerance.
func (s *Store) Verify(id, challengeID string, response *bits.Stream) (ok bool, distance, limit int, err error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch, found := sh.outstanding[challengeID]
	if !found || ch.DeviceID != id {
		return false, 0, 0, ErrUnknownChallenge
	}
	delete(sh.outstanding, challengeID)
	ok, distance, err = sh.v.Verify(ch, response)
	if err != nil {
		return false, 0, 0, err
	}
	return ok, distance, int(s.opt.Tolerance * float64(len(ch.Pairs))), nil
}

// Device summarizes one enrolled device.
func (s *Store) Device(id string) (DeviceInfo, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, err := sh.v.Device(id)
	if err != nil {
		return DeviceInfo{}, err
	}
	fresh, err := sh.v.NumFresh(id)
	if err != nil {
		return DeviceInfo{}, err
	}
	out := 0
	for _, ch := range sh.outstanding {
		if ch.DeviceID == id {
			out++
		}
	}
	return DeviceInfo{
		ID:          id,
		Pairs:       len(rec.Enrollment.Selections),
		Bits:        rec.Enrollment.NumBits(),
		Fresh:       fresh,
		Outstanding: out,
	}, nil
}

// NumDevices counts enrolled devices across all shards.
func (s *Store) NumDevices() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.v.NumDevices()
		sh.mu.RUnlock()
	}
	return n
}

// SaveAll persists every shard (a full snapshot). With write-through
// persistence this is a no-op safety net run at graceful shutdown; without
// a data directory it does nothing.
func (s *Store) SaveAll() error {
	var errs []error
	for _, sh := range s.shards {
		sh.mu.Lock()
		errs = append(errs, s.persist(sh))
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// persistLocked writes the shard's snapshot via temp-file + rename. The
// caller holds the shard lock. Empty shards are skipped (no file until the
// first device lands).
func (sh *shard) persistLocked() error {
	if sh.path == "" || sh.v.NumDevices() == 0 {
		return nil
	}
	tmp := sh.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("authserve: snapshot: %w", err)
	}
	if err := sh.v.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("authserve: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("authserve: snapshot: %w", err)
	}
	if err := os.Rename(tmp, sh.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("authserve: snapshot: %w", err)
	}
	return nil
}

// atomicWriteJSON marshals v and writes it with the same temp-file +
// rename discipline as shard snapshots.
func atomicWriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
