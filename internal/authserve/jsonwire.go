package authserve

// Hand-rolled JSON codec for the verify and challenge hot paths.
//
// The generic encoding/json path costs a Decoder, reflection walks, and
// per-field allocations on every request; this file replaces it for the
// two wire shapes the steady-state traffic is made of. The contract is
// strict byte-compatibility in both directions:
//
//   - Encoding is byte-identical to json.NewEncoder + SetIndent("", "  ")
//     + Encode of the wire structs: two-space indent, HTML-escaped
//     strings (<, >, & as <, >, &), a trailing newline.
//     wire_test.go's golden file and the equivalence tests in
//     jsonwire_test.go hold it to that.
//
//   - Decoding mirrors json.Decoder.Decode into the request structs:
//     unknown fields are skipped, duplicate keys are last-wins, a
//     top-level null is accepted and leaves the struct zeroed, trailing
//     data after the first value is ignored, raw control characters in
//     strings are rejected, and \uXXXX escapes (surrogate pairs
//     included) are decoded. The one deliberate divergence: invalid
//     UTF-8 inside a string is passed through rather than replaced with
//     U+FFFD — the bytes only ever name a device that cannot exist, and
//     the error text of a 400 is not part of the wire contract.
//
// Errors are reported with enough position context to debug a client,
// but their exact text is NOT pinned — only status codes are.

import (
	"errors"
	"fmt"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"

	"ropuf/internal/bits"
)

// --- decoding ---------------------------------------------------------------

var errJSONEOF = errors.New("unexpected end of JSON input")

type jsonParser struct {
	data []byte
	pos  int
	// arena accumulates unescaped string bytes; it only ever grows
	// during one parse, so earlier views into it stay valid.
	arena []byte
}

func (p *jsonParser) errAt(format string, args ...any) error {
	return fmt.Errorf("byte %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *jsonParser) skipWS() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// parseObject drives one top-level object (or null): field is called
// with each key positioned at its value and must consume it. Trailing
// bytes after the value are ignored — json.Decoder.Decode semantics.
func (p *jsonParser) parseObject(field func(key []byte) error) error {
	p.skipWS()
	if p.pos >= len(p.data) {
		return errJSONEOF
	}
	if p.data[p.pos] == 'n' { // null leaves the struct zeroed
		return p.parseLiteral("null")
	}
	if p.data[p.pos] != '{' {
		return p.errAt("expected object, found %q", p.data[p.pos])
	}
	p.pos++
	p.skipWS()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return nil
	}
	for {
		p.skipWS()
		key, err := p.parseString()
		if err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return p.errAt("expected ':' after object key")
		}
		p.pos++
		p.skipWS()
		if err := field(key); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.data) {
			return errJSONEOF
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return p.errAt("expected ',' or '}' in object, found %q", p.data[p.pos])
		}
	}
}

func (p *jsonParser) parseLiteral(lit string) error {
	if len(p.data)-p.pos < len(lit) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errAt("invalid literal")
	}
	p.pos += len(lit)
	return nil
}

// parseString decodes one JSON string. The fast path (no escapes)
// returns a view into the input; escaped strings are unescaped into the
// arena. Either way the caller must copy before the bytes outlive the
// request (string(...) does).
func (p *jsonParser) parseString() ([]byte, error) {
	if p.pos >= len(p.data) {
		return nil, errJSONEOF
	}
	if p.data[p.pos] != '"' {
		return nil, p.errAt("expected string, found %q", p.data[p.pos])
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			s := p.data[start:p.pos]
			p.pos++
			return s, nil
		}
		if c == '\\' {
			return p.parseStringSlow(start)
		}
		if c < 0x20 {
			return nil, p.errAt("raw control character %#x in string literal", c)
		}
		p.pos++
	}
	return nil, errJSONEOF
}

// parseStringSlow continues a string from its first backslash,
// unescaping into the arena.
func (p *jsonParser) parseStringSlow(start int) ([]byte, error) {
	arenaStart := len(p.arena)
	p.arena = append(p.arena, p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return p.arena[arenaStart:len(p.arena):len(p.arena)], nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return nil, errJSONEOF
			}
			switch e := p.data[p.pos]; e {
			case '"', '\\', '/':
				p.arena = append(p.arena, e)
				p.pos++
			case 'b':
				p.arena = append(p.arena, '\b')
				p.pos++
			case 'f':
				p.arena = append(p.arena, '\f')
				p.pos++
			case 'n':
				p.arena = append(p.arena, '\n')
				p.pos++
			case 'r':
				p.arena = append(p.arena, '\r')
				p.pos++
			case 't':
				p.arena = append(p.arena, '\t')
				p.pos++
			case 'u':
				p.pos++
				r, err := p.parseHexRune()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					// A high surrogate must be completed by a \uXXXX low
					// half; any other continuation decodes the lone half
					// to U+FFFD without consuming it, exactly as
					// encoding/json does.
					dec := utf8.RuneError
					if p.pos+1 < len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
						save := p.pos
						p.pos += 2
						lo, err := p.parseHexRune()
						if err != nil {
							return nil, err
						}
						if d := utf16.DecodeRune(r, lo); d != utf8.RuneError {
							dec = d
						} else {
							p.pos = save // lone surrogate; re-scan the next escape normally
						}
					}
					p.arena = utf8.AppendRune(p.arena, dec)
				} else {
					p.arena = utf8.AppendRune(p.arena, r)
				}
			default:
				return nil, p.errAt("invalid escape character %q in string", e)
			}
		case c < 0x20:
			return nil, p.errAt("raw control character %#x in string literal", c)
		default:
			p.arena = append(p.arena, c)
			p.pos++
		}
	}
	return nil, errJSONEOF
}

// parseHexRune consumes the 4 hex digits of a \u escape (the "\u" is
// already consumed).
func (p *jsonParser) parseHexRune() (rune, error) {
	if len(p.data)-p.pos < 4 {
		return 0, errJSONEOF
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, p.errAt("invalid hex digit %q in \\u escape", c)
		}
	}
	p.pos += 4
	return r, nil
}

// parseInt decodes a JSON number into an int, rejecting fractions and
// exponents the way encoding/json rejects them for integer fields. The
// JSON number grammar is enforced first ("01" is a syntax error, not 1).
func (p *jsonParser) parseInt() (int, error) {
	start := p.pos
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
		p.pos++
		digits++
	}
	if digits == 0 {
		return 0, p.errAt("expected number")
	}
	if digits > 1 && p.data[p.pos-digits] == '0' {
		return 0, p.errAt("number has a leading zero")
	}
	if p.pos < len(p.data) {
		switch p.data[p.pos] {
		case '.', 'e', 'E':
			return 0, p.errAt("number %s... is not an integer", p.data[start:p.pos])
		}
	}
	n, err := strconv.ParseInt(string(p.data[start:p.pos]), 10, 64)
	if err != nil {
		return 0, p.errAt("number out of range")
	}
	return int(n), nil
}

// skipValue consumes any JSON value — the unknown-field path.
func (p *jsonParser) skipValue() error {
	p.skipWS()
	if p.pos >= len(p.data) {
		return errJSONEOF
	}
	switch c := p.data[p.pos]; {
	case c == '"':
		_, err := p.parseString()
		return err
	case c == 't':
		return p.parseLiteral("true")
	case c == 'f':
		return p.parseLiteral("false")
	case c == 'n':
		return p.parseLiteral("null")
	case c == '-' || (c >= '0' && c <= '9'):
		return p.skipNumber()
	case c == '{':
		p.pos++
		p.skipWS()
		if p.pos < len(p.data) && p.data[p.pos] == '}' {
			p.pos++
			return nil
		}
		for {
			p.skipWS()
			if _, err := p.parseString(); err != nil {
				return err
			}
			p.skipWS()
			if p.pos >= len(p.data) || p.data[p.pos] != ':' {
				return p.errAt("expected ':' after object key")
			}
			p.pos++
			if err := p.skipValue(); err != nil {
				return err
			}
			p.skipWS()
			if p.pos >= len(p.data) {
				return errJSONEOF
			}
			switch p.data[p.pos] {
			case ',':
				p.pos++
			case '}':
				p.pos++
				return nil
			default:
				return p.errAt("expected ',' or '}' in object")
			}
		}
	case c == '[':
		p.pos++
		p.skipWS()
		if p.pos < len(p.data) && p.data[p.pos] == ']' {
			p.pos++
			return nil
		}
		for {
			if err := p.skipValue(); err != nil {
				return err
			}
			p.skipWS()
			if p.pos >= len(p.data) {
				return errJSONEOF
			}
			switch p.data[p.pos] {
			case ',':
				p.pos++
			case ']':
				p.pos++
				return nil
			default:
				return p.errAt("expected ',' or ']' in array")
			}
		}
	default:
		return p.errAt("unexpected character %q", c)
	}
}

func (p *jsonParser) skipNumber() error {
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
		p.pos++
		digits++
	}
	if digits == 0 {
		return p.errAt("expected number")
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		frac := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			frac++
		}
		if frac == 0 {
			return p.errAt("number has a bare decimal point")
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		exp := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			exp++
		}
		if exp == 0 {
			return p.errAt("number has an empty exponent")
		}
	}
	return nil
}

func bytesEq(b []byte, s string) bool {
	return string(b) == s // compiles to a comparison, no copy
}

// maybeNull consumes a null value if one is next, mirroring
// encoding/json's rule that null into a typed field is a no-op.
func (p *jsonParser) maybeNull() (bool, error) {
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		return true, p.parseLiteral("null")
	}
	return false, nil
}

// parseVerifyRequest decodes a POST /v1/verify body. id and challengeID
// are copied out of the buffer (they may outlive the request in store
// maps); the response bits go straight into resp (Reset first), skipping
// the intermediate string entirely. A bits syntax error is returned as
// bitsErr so the caller can keep the historical error ordering: any JSON
// syntax error wins, then the bits complaint.
func parseVerifyRequest(data []byte, arena []byte, resp *bits.Stream) (id, challengeID string, bitsErr error, arenaOut []byte, err error) {
	p := jsonParser{data: data, arena: arena[:0]}
	err = p.parseObject(func(key []byte) error {
		if null, err := p.maybeNull(); null || err != nil {
			return err
		}
		switch {
		case bytesEq(key, "id"):
			v, err := p.parseString()
			if err != nil {
				return err
			}
			id = string(v)
		case bytesEq(key, "challenge_id"):
			v, err := p.parseString()
			if err != nil {
				return err
			}
			challengeID = string(v)
		case bytesEq(key, "response"):
			v, err := p.parseString()
			if err != nil {
				return err
			}
			resp.Reset() // duplicate keys: last one wins
			bitsErr = resp.AppendChars(v)
		default:
			return p.skipValue()
		}
		return nil
	})
	return id, challengeID, bitsErr, p.arena, err
}

// parseChallengeRequest decodes a POST /v1/challenge body.
func parseChallengeRequest(data []byte, arena []byte) (id string, k int, arenaOut []byte, err error) {
	p := jsonParser{data: data, arena: arena[:0]}
	err = p.parseObject(func(key []byte) error {
		if null, err := p.maybeNull(); null || err != nil {
			return err
		}
		switch {
		case bytesEq(key, "id"):
			v, err := p.parseString()
			if err != nil {
				return err
			}
			id = string(v)
		case bytesEq(key, "k"):
			v, err := p.parseInt()
			if err != nil {
				return err
			}
			k = v
		default:
			return p.skipValue()
		}
		return nil
	})
	return id, k, p.arena, err
}

// --- encoding ---------------------------------------------------------------

// jsonSafe marks the ASCII bytes encoding/json emits verbatim inside a
// string with HTML escaping on: printable, not ", \, <, >, &.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		t[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		t[c] = false
	}
	return t
}()

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with exactly
// encoding/json's escaping rules (HTML escaping on): ", \, and the
// control whitespace trio get two-character escapes, other control
// bytes and <, >, & get \u00xx, U+2028/U+2029 get \u202x, and invalid
// UTF-8 becomes U+FFFD.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default: // other control bytes and the HTML trio
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendVerifyResponse renders VerifyResponse exactly as
// json.Encoder.SetIndent("", "  ").Encode does, trailing newline included.
func appendVerifyResponse(dst []byte, v VerifyResponse) []byte {
	dst = append(dst, "{\n  \"ok\": "...)
	if v.OK {
		dst = append(dst, "true"...)
	} else {
		dst = append(dst, "false"...)
	}
	dst = append(dst, ",\n  \"distance\": "...)
	dst = strconv.AppendInt(dst, int64(v.Distance), 10)
	dst = append(dst, ",\n  \"limit\": "...)
	dst = strconv.AppendInt(dst, int64(v.Limit), 10)
	dst = append(dst, ",\n  \"bits\": "...)
	dst = strconv.AppendInt(dst, int64(v.Bits), 10)
	return append(dst, "\n}\n"...)
}

// appendChallengeResponse renders ChallengeResponse identically to the
// indented encoding/json output, including the one-element-per-line
// pairs array and the nil-slice → null / empty-slice → [] distinction.
func appendChallengeResponse(dst []byte, v ChallengeResponse) []byte {
	dst = append(dst, "{\n  \"challenge_id\": "...)
	dst = appendJSONString(dst, v.ChallengeID)
	dst = append(dst, ",\n  \"id\": "...)
	dst = appendJSONString(dst, v.ID)
	dst = append(dst, ",\n  \"pairs\": "...)
	switch {
	case v.Pairs == nil:
		dst = append(dst, "null"...)
	case len(v.Pairs) == 0:
		dst = append(dst, "[]"...)
	default:
		dst = append(dst, "[\n"...)
		for i, p := range v.Pairs {
			dst = append(dst, "    "...)
			dst = strconv.AppendInt(dst, int64(p), 10)
			if i < len(v.Pairs)-1 {
				dst = append(dst, ',')
			}
			dst = append(dst, '\n')
		}
		dst = append(dst, "  ]"...)
	}
	dst = append(dst, ",\n  \"fresh\": "...)
	dst = strconv.AppendInt(dst, int64(v.Fresh), 10)
	return append(dst, "\n}\n"...)
}

// appendErrorResponse renders ErrorResponse identically to the indented
// encoding/json output.
func appendErrorResponse(dst []byte, msg string) []byte {
	dst = append(dst, "{\n  \"error\": "...)
	dst = appendJSONString(dst, msg)
	return append(dst, "\n}\n"...)
}
