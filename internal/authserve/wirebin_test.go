package authserve

import (
	"bytes"
	"net/http"
	"testing"
)

// TestBinaryEnrollWire pins that the binary enroll encoding is
// semantically identical to the JSON body: the same device enrolled
// through either path yields the same enrollment summary, and the binary
// path feeds the normal challenge/verify flow.
func TestBinaryEnrollWire(t *testing.T) {
	devices, _ := testFleet(t, 2, 16)
	_, ts := newTestServer(t, StoreOptions{Seed: 7}, ServerOptions{})
	c := ts.Client()

	// Device 0 via JSON, device 1 via binary.
	code, jsonBody := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0]))
	if code != http.StatusOK {
		t.Fatalf("json enroll = %d %s", code, jsonBody)
	}
	req := EnrollRequest{ID: devices[1].ID, Mode: "case2"}
	for _, p := range devices[1].Pairs {
		req.Pairs = append(req.Pairs, PairWire{Alpha: p.Alpha, Beta: p.Beta})
	}
	bin, err := AppendEnrollBinary(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/enroll", bytes.NewReader(bin))
	httpReq.Header.Set("Content-Type", EnrollContentTypeBinary)
	resp, err := c.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary enroll = %d", resp.StatusCode)
	}
	var binResp, jsonResp EnrollResponse
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	binResp = mustUnmarshal[EnrollResponse](t, buf.Bytes())
	jsonResp = mustUnmarshal[EnrollResponse](t, jsonBody)
	// Devices from the same synthetic fleet parameters enroll to the same
	// shape; only the IDs differ.
	if binResp.Pairs != jsonResp.Pairs || binResp.ID != devices[1].ID {
		t.Fatalf("binary enroll response %+v vs json %+v", binResp, jsonResp)
	}

	// Round-trip through the decoder directly: the parsed request must
	// match what was encoded.
	var back EnrollRequest
	if err := decodeEnrollBinary(bytes.NewReader(bin), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != req.ID || back.Mode != req.Mode || len(back.Pairs) != len(req.Pairs) {
		t.Fatalf("decode round-trip = %+v", back)
	}
	for i := range back.Pairs {
		for s := range back.Pairs[i].Alpha {
			if back.Pairs[i].Alpha[s] != req.Pairs[i].Alpha[s] || back.Pairs[i].Beta[s] != req.Pairs[i].Beta[s] {
				t.Fatalf("pair %d stage %d delays diverge", i, s)
			}
		}
	}

	// Hostile bodies answer 400, not 500 or a hang.
	for name, body := range map[string][]byte{
		"truncated": bin[:len(bin)/2],
		"garbage":   []byte("REnot really"),
		"empty":     nil,
	} {
		hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/enroll", bytes.NewReader(body))
		hr.Header.Set("Content-Type", EnrollContentTypeBinary)
		resp, err := c.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s binary body = %d, want 400", name, resp.StatusCode)
		}
	}
}
