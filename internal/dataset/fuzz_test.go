package dataset

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"testing"
)

// fuzzSeedRecord frames one valid tiny board record — the known-good shape
// the fuzzer mutates.
func fuzzSeedRecord(t testing.TB) []byte {
	b := &Board{
		ID:    7,
		GridW: 2,
		GridH: 1,
		X:     []int{0, 1},
		Y:     []int{0, 0},
		Freq: map[Condition][]float64{
			NominalCondition: {95.5, 96.25},
			{980, 250}:       {94.0, 95.125},
		},
	}
	body, err := appendBinBoard(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	var framed []byte
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	framed = append(framed, hdr[:]...)
	return append(framed, body...)
}

// FuzzShardBin feeds arbitrary bytes to the framed-record decoder the way
// binCursor does: records are read back to back until one fails. Corrupt
// input must produce an error, never a panic or an oversized allocation,
// and every decoded board must be internally consistent.
func FuzzShardBin(f *testing.F) {
	seed := fuzzSeedRecord(f)
	f.Add(seed)
	f.Add(append(append([]byte{}, seed...), seed...)) // two records back to back
	f.Add(seed[:len(seed)/2])                         // truncated mid-body
	f.Add(seed[:6])                                   // truncated mid-header
	// Frame that claims a giant body.
	huge := append([]byte{}, seed...)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<31)
	f.Add(huge)
	// Body bytes damaged under an intact CRC field.
	bad := append([]byte{}, seed...)
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bytes.NewReader(data)
		var buf []byte
		for {
			b, rows, err := readBinBoard(br, &buf)
			if err != nil {
				return // rejection is the expected outcome for garbage
			}
			n := len(b.X)
			if len(b.Y) != n {
				t.Fatalf("decoded board has %d X but %d Y", n, len(b.Y))
			}
			var want int64
			for _, fr := range b.Freq {
				if len(fr) != n {
					t.Fatalf("decoded condition has %d ROs, board has %d", len(fr), n)
				}
				want += int64(n)
			}
			if rows != want {
				t.Fatalf("row count %d, board holds %d", rows, want)
			}
		}
	})
}

// FuzzManifest asserts hostile manifest bytes either parse into a manifest
// that satisfies every invariant OpenShards relies on, or error — never
// panic.
func FuzzManifest(f *testing.F) {
	good := &Manifest{
		Version: 1,
		Format:  FormatBin,
		Shards:  1,
		Boards:  2,
		Rows:    4,
		Files:   []ShardInfo{{File: "shard-0000.bin", Boards: 2, Rows: 4, Bytes: 99, CRC32C: 5}},
	}
	data, err := json.Marshal(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(bytes.Replace(data, []byte(`"version":1`), []byte(`"version":-1`), 1))
	f.Add(bytes.Replace(data, []byte(`"bin"`), []byte(`"exe"`), 1))
	f.Add(bytes.Replace(data, []byte(`"shards":1`), []byte(`"shards":1000000`), 1))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"format":"csv","shards":1,"boards":0,"rows":0,"files":[{"file":"shard-0000.csv"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return
		}
		if m.Shards != len(m.Files) || m.Shards <= 0 {
			t.Fatalf("accepted manifest with %d shards over %d files", m.Shards, len(m.Files))
		}
		boards, rows := 0, int64(0)
		for i, fi := range m.Files {
			if fi.File != shardName(i, m.Format) {
				t.Fatalf("accepted shard name %q at index %d", fi.File, i)
			}
			if fi.Boards < 0 || fi.Rows < 0 || fi.Bytes < 0 {
				t.Fatalf("accepted negative counts in %q", fi.File)
			}
			boards += fi.Boards
			rows += fi.Rows
		}
		if boards != m.Boards || rows != m.Rows {
			t.Fatalf("accepted inconsistent totals: %d/%d boards, %d/%d rows",
				m.Boards, boards, m.Rows, rows)
		}
	})
}

// TestFuzzSeedsDecode keeps the happy-path fuzz seed honest: the framed
// record must actually decode back to the board it encodes.
func TestFuzzSeedsDecode(t *testing.T) {
	seed := fuzzSeedRecord(t)
	br := bytes.NewReader(seed)
	var buf []byte
	b, rows, err := readBinBoard(br, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 7 || rows != 4 || len(b.Freq) != 2 {
		t.Fatalf("seed decoded to board %d with %d rows, %d conditions", b.ID, rows, len(b.Freq))
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatal("seed record has trailing bytes")
	}
}
