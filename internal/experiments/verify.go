package experiments

import (
	"fmt"
	"strings"

	"ropuf/internal/core"
	"ropuf/internal/dataset"
	"ropuf/internal/metrics"
	"ropuf/internal/nist"
)

// Check is one verifiable reproduction claim.
type Check struct {
	Name string
	OK   bool
	Got  string
}

// Verify runs the headline assertions of the reproduction end-to-end and
// returns one Check per claim. cmd/ropuf's "verify" subcommand exits
// non-zero if any fails, making this the repository's CI gate.
func (r *Runner) Verify() ([]Check, error) {
	var checks []Check
	add := func(name string, ok bool, format string, args ...any) {
		checks = append(checks, Check{Name: name, OK: ok, Got: fmt.Sprintf(format, args...)})
	}
	ds, err := r.VT()
	if err != nil {
		return nil, err
	}

	// 1. Raw streams fail NIST; distilled pass (Tables I/II).
	rawStreams, err := pufStreams(ds, numNominalBoards, streamRingLen, core.Case1, false)
	if err != nil {
		return nil, err
	}
	rawRep, err := nist.RunReport(rawStreams, nist.ShortSuite(rawStreams[0].Len()))
	if err != nil {
		return nil, err
	}
	add("raw bits fail NIST", !rawRep.AllPass(), "allPass=%v", rawRep.AllPass())

	distStreams, err := pufStreams(ds, numNominalBoards, streamRingLen, core.Case1, true)
	if err != nil {
		return nil, err
	}
	distRep, err := nist.RunReport(distStreams, nist.ShortSuite(distStreams[0].Len()))
	if err != nil {
		return nil, err
	}
	add("distilled bits pass NIST", distRep.AllPass(), "allPass=%v", distRep.AllPass())

	// 2. Uniqueness ≈ 50% (Fig. 3).
	hd, err := metrics.ComputeInterChipHD(distStreams)
	if err != nil {
		return nil, err
	}
	u := hd.UniquenessPercent()
	add("uniqueness near 50%", u > 45 && u < 55, "%.1f%%", u)

	// 3. Reliability ordering under voltage (Fig. 4): traditional worst,
	// configurable near zero at n=7 with the mid-voltage configuration.
	var confN7, tradMean float64
	cells := 0
	for _, board := range ds.EnvBoards() {
		bars, err := reliabilityCell(board, 7, core.Case1, dataset.VoltageSweep())
		if err != nil {
			return nil, err
		}
		confN7 += bars[2]
		tradMean += bars[5]
		cells++
	}
	confN7 /= float64(cells)
	tradMean /= float64(cells)
	add("configurable n=7 mid-voltage 0% flips", confN7 == 0, "%.2f%%", confN7)
	add("traditional flips > 5x configurable", tradMean > 5*(confN7+0.1), "trad=%.2f%%", tradMean)

	// 4. Table V bit accounting and 4x claim.
	conf, oo8, err := dataset.GroupBitsPerBoard(512, 5)
	if err != nil {
		return nil, err
	}
	add("Table V counts (n=5)", conf == 48 && oo8 == 12, "conf=%d oo8=%d", conf, oo8)

	// 5. Threshold retention (§IV.E): configurable Case-2 keeps all bits at
	// Rth = 3 where traditional loses more than a third.
	thr, err := r.Threshold()
	if err != nil {
		return nil, err
	}
	var tv, cv [6]float64
	if _, err := fscanText(thr.Text, "Traditional RO PUF %f %f %f %f %f %f", &tv[0], &tv[1], &tv[2], &tv[3], &tv[4], &tv[5]); err != nil {
		return nil, err
	}
	if _, err := fscanText(thr.Text, "Configurable (Case-2) %f %f %f %f %f %f", &cv[0], &cv[1], &cv[2], &cv[3], &cv[4], &cv[5]); err != nil {
		return nil, err
	}
	add("Case-2 keeps 32 bits at Rth=3", cv[3] >= 31.5, "%.1f", cv[3])
	add("traditional loses >1/3 at Rth=3", tv[3] < 22, "%.1f", tv[3])

	return checks, nil
}

// fscanText finds the first line containing the format's literal prefix and
// scans it (the non-test sibling of the test helper fscanLine).
func fscanText(text, format string, args ...any) (int, error) {
	key := format
	if i := strings.Index(format, "%"); i >= 0 {
		key = strings.TrimSpace(format[:i])
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, key) {
			return fmt.Sscanf(strings.TrimSpace(line), format, args...)
		}
	}
	return 0, fmt.Errorf("experiments: no line matching %q", key)
}
