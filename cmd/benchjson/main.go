// Command benchjson converts `go test -bench` output into a JSON perf
// record. It reads the benchmark output on stdin, echoes it through to
// stdout unchanged (so the human-readable numbers stay visible in CI
// logs), and writes name → {iterations, ns/op, B/op, allocs/op} to the -o
// file. `make bench` uses it to accumulate the repo's fleet perf
// trajectory in BENCH_fleet.json.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkFleet' -benchmem . | benchjson -o BENCH_fleet.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. Zero-valued fields were absent
// from the input line (e.g. B/op without -benchmem).
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_fleet.json", "write the JSON record to this file")
	flag.Parse()
	results, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := marshal(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parse scans benchmark lines from r, tees every line to echo, and returns
// the parsed results keyed by benchmark name (the -GOMAXPROCS suffix is
// stripped so keys stay stable across machines).
func parse(r interface{ Read([]byte) (int, error) }, echo interface{ Write([]byte) (int, error) }) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		results[name] = res
	}
	return results, sc.Err()
}

// marshal renders the results with sorted keys and a trailing newline so
// the file diffs cleanly between runs.
func marshal(results map[string]Result) ([]byte, error) {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		entry, err := json.Marshal(results[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", name, entry)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
