package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ropuf/internal/authserve"
)

// TestBackoffSchedule pins the capped exponential schedule: base<<attempt,
// a longer Retry-After hint wins, and everything clamps to cap.
func TestBackoffSchedule(t *testing.T) {
	bo := backoff{base: 25 * time.Millisecond, cap: 2 * time.Second}
	cases := []struct {
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{0, 0, 25 * time.Millisecond},
		{1, 0, 50 * time.Millisecond},
		{2, 0, 100 * time.Millisecond},
		{3, 0, 200 * time.Millisecond},
		{6, 0, 1600 * time.Millisecond},
		{7, 0, 2 * time.Second},                   // 3.2s clamps to cap
		{100, 0, 2 * time.Second},                 // shift-overflow guard still clamps
		{0, time.Second, time.Second},             // hint longer than local: hint wins
		{6, time.Second, 1600 * time.Millisecond}, // hint shorter: schedule wins
		{0, 5 * time.Second, 2 * time.Second},     // hint above cap clamps
		{2, -time.Second, 100 * time.Millisecond}, // nonsense hint ignored
	}
	for _, c := range cases {
		if got := bo.delay(c.attempt, c.retryAfter); got != c.want {
			t.Errorf("delay(%d, %s) = %s, want %s", c.attempt, c.retryAfter, got, c.want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"1", time.Second},
		{" 30 ", 30 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"", 0},
		{"garbage", 0},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0}, // HTTP-date form not supported
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestPostJSONBackoffRetriesOn429 drives the retry loop against a server
// that throttles the first two attempts with a Retry-After hint and then
// accepts, checking the client waited at least the hinted delays instead
// of hammering.
func TestPostJSONBackoffRetriesOn429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // delta-seconds form; schedule supplies the floor
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	lg := &loadgen{base: srv.URL, client: srv.Client()}
	bo := backoff{base: time.Millisecond, cap: 10 * time.Millisecond}
	var out struct {
		OK bool `json:"ok"`
	}
	start := time.Now()
	code, err := lg.postJSONBackoff(context.Background(), "verify", "/", struct{}{}, &out, bo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || !out.OK {
		t.Fatalf("got code %d ok=%v after retries, want 200 ok", code, out.OK)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	// Two sleeps of 1ms and 2ms: the total must reflect at least that.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("retries completed in %s, want >= 3ms of backoff", elapsed)
	}
}

// TestPostJSONBackoffGivesUp checks a persistently throttling server is
// reported as 429 after maxAttempts rather than retried forever.
func TestPostJSONBackoffGivesUp(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	lg := &loadgen{base: srv.URL, client: srv.Client()}
	bo := backoff{base: time.Microsecond, cap: time.Microsecond}
	code, err := lg.postJSONBackoff(context.Background(), "verify", "/", struct{}{}, nil, bo, 3)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("got code %d, want 429", code)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want exactly maxAttempts=3", got)
	}
}

// TestLoadgenEnrollMode runs the enroll-only load shape end to end against
// an in-process authserve: it must enroll the whole fleet, report enroll
// throughput plus latency percentiles, and never touch the challenge or
// verify routes.
func TestLoadgenEnrollMode(t *testing.T) {
	store, err := authserve.Open(authserve.StoreOptions{Shards: 4, Dir: t.TempDir(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := authserve.NewServer(store, authserve.ServerOptions{})
	var challenges atomic.Int64
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/challenge" || r.URL.Path == "/v1/verify" {
			challenges.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "bench.json")
	err = runLoadgen(context.Background(), []string{
		"-addr", ts.URL, "-mode", "enroll",
		"-devices", "8", "-pairs", "4", "-stages", "5", "-concurrency", "4",
		"-bench-out", out,
	})
	if err != nil {
		t.Fatalf("runLoadgen: %v", err)
	}
	if n := store.NumDevices(); n != 8 {
		t.Fatalf("store has %d devices after enroll run, want 8", n)
	}
	if c := challenges.Load(); c != 0 {
		t.Fatalf("enroll mode sent %d challenge/verify requests, want 0", c)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"BenchmarkAuthserveEnroll", "BenchmarkAuthserveEnrollLatencyP50", "BenchmarkAuthserveEnrollLatencyP99"} {
		if !strings.Contains(string(data), key) {
			t.Errorf("bench output missing %s:\n%s", key, data)
		}
	}
}

// TestLoadgenModeValidation rejects unknown modes and harvest+enroll.
func TestLoadgenModeValidation(t *testing.T) {
	if err := runLoadgen(context.Background(), []string{"-mode", "sideways"}); err == nil {
		t.Fatal("unknown -mode accepted")
	}
	if err := runLoadgen(context.Background(), []string{"-mode", "enroll", "-harvest"}); err == nil {
		t.Fatal("-harvest with -mode enroll accepted")
	}
}
