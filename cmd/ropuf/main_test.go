package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ropuf/internal/metrics"
)

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run(context.Background(), []string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(context.Background(), []string{"experiment"}); err == nil {
		t.Fatal("experiment without IDs accepted")
	}
	if err := run(context.Background(), []string{"experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment ID accepted")
	}
}

func TestRunFleet(t *testing.T) {
	if err := run(context.Background(), []string{"fleet", "-devices", "8", "-pairs", "8", "-stages", "5", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"fleet", "-mode", "case3"}); err == nil {
		t.Fatal("unknown fleet mode accepted")
	}
	if err := run(context.Background(), []string{"fleet", "-devices", "0"}); err == nil {
		t.Fatal("zero-device fleet accepted")
	}
	if err := run(context.Background(), []string{"fleet", "-bogus"}); err == nil {
		t.Fatal("unknown fleet flag accepted")
	}
}

// TestRunFleetCancelled proves a pre-cancelled context aborts the batch with
// the cancellation error rather than hanging or succeeding silently.
func TestRunFleetCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"fleet", "-devices", "16", "-pairs", "4", "-stages", "5"})
	if err == nil {
		t.Fatal("cancelled fleet run reported success")
	}
	if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("err = %v, want a cancellation error", err)
	}
}

// TestRunFleetObservability runs a fleet batch with the metrics endpoint and
// trace output enabled, then checks the exposition and the span log.
func TestRunFleetObservability(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	// Capture the announced listen address from stderr.
	oldStderr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := run(context.Background(), []string{"fleet",
		"-devices", "8", "-pairs", "4", "-stages", "5",
		"-metrics-addr", "127.0.0.1:0", "-trace-out", tracePath})
	w.Close()
	os.Stderr = oldStderr
	stderr, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(string(stderr), "serving /metrics") {
		t.Fatalf("stderr %q does not announce the metrics endpoint", stderr)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// 8 enroll device spans + batch span + 8 evaluate spans + batch span.
	if len(lines) != 18 {
		t.Fatalf("trace has %d spans, want 18", len(lines))
	}
	names := map[string]int{}
	for _, line := range lines {
		var ev struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		names[ev.Name]++
	}
	if names["fleet.enroll.device"] != 8 || names["fleet.enroll"] != 1 ||
		names["fleet.evaluate.device"] != 8 || names["fleet.evaluate"] != 1 {
		t.Fatalf("span name counts = %v", names)
	}
}

// TestObsSessionMetricsEndpoint scrapes a live session the way the
// acceptance criteria describe: Prometheus text with the fleet counters and
// stage histograms, plus a reachable pprof index.
func TestObsSessionMetricsEndpoint(t *testing.T) {
	session, err := openObs("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	counters := &metrics.FleetCounters{}
	counters.Bind(session.Registry)
	counters.DevicesEnrolled.Add(4)
	counters.AddStageTime("enroll", 5*time.Millisecond)
	for _, url := range []string{
		fmt.Sprintf("http://%s/metrics", session.server.Addr()),
		fmt.Sprintf("http://%s/healthz", session.server.Addr()),
		fmt.Sprintf("http://%s/debug/pprof/", session.server.Addr()),
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		if url[len(url)-8:] == "/metrics" {
			for _, want := range []string{
				"ropuf_fleet_devices_enrolled_total",
				"ropuf_fleet_stage_duration_seconds_bucket",
			} {
				if !strings.Contains(string(body), want) {
					t.Fatalf("metrics body missing %q:\n%s", want, body)
				}
			}
		}
	}
}

func TestRunSingleExperimentWithOut(t *testing.T) {
	dir := t.TempDir()
	old := *outDir
	*outDir = dir
	defer func() { *outDir = old }()
	if err := run(context.Background(), []string{"experiment", "tableV"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tableV.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Configurable PUFs") {
		t.Fatal("written report missing expected content")
	}
}
