package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.10g, want %.10g (tol %g)", name, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		approx(t, "Mean", Mean(c.xs), c.want, 1e-12)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with divisor n-1: Σ(x−5)² = 32, 32/7.
	approx(t, "Variance", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "StdDev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
	approx(t, "PopVariance", PopVariance(xs), 4, 1e-12)
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
	if PopVariance(nil) != 0 {
		t.Error("PopVariance of empty slice should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -2, 8, 0})
	if lo != -2 || hi != 8 {
		t.Fatalf("MinMax = (%g, %g), want (-2, 8)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax of empty slice did not panic")
		}
	}()
	MinMax(nil)
}

func TestMedian(t *testing.T) {
	approx(t, "Median odd", Median([]float64{3, 1, 2}), 2, 0)
	approx(t, "Median even", Median([]float64{4, 1, 3, 2}), 2.5, 0)
	// Median must not modify its argument.
	xs := []float64{9, 1, 5}
	Median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("Median modified its input")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Correlation perfect", r, 1, 1e-12)

	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Correlation anti", r, -1, 1e-12)

	if _, err := Correlation(xs, xs[:3]); err == nil {
		t.Error("Correlation accepted mismatched lengths")
	}
	if _, err := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("Correlation accepted constant input")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("Correlation accepted single sample")
	}
}

func TestCorrelationBounded(t *testing.T) {
	check := func(seed int64) bool {
		xs := make([]float64, 16)
		ys := make([]float64, 16)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000)/500 - 1
		}
		for i := range xs {
			xs[i] = next()
			ys[i] = next()
		}
		r, err := Correlation(xs, ys)
		if err != nil {
			return true // degenerate constant draw
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIgamcKnownValues(t *testing.T) {
	// Chi-squared survival values cross-checked against published tables:
	// P(χ²_k > x) = Igamc(k/2, x/2).
	cases := []struct {
		k    int
		x    float64
		want float64
	}{
		{1, 3.841, 0.05},
		{2, 5.991, 0.05},
		{5, 11.070, 0.05},
		{10, 18.307, 0.05},
		{9, 21.666, 0.01},
		{1, 0.00393, 0.95},
	}
	for _, c := range cases {
		got := ChiSquaredSF(c.x, c.k)
		approx(t, "ChiSquaredSF", got, c.want, 2e-4)
	}
}

func TestIgamIgamcComplementary(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 7, 20} {
		for _, x := range []float64{0.1, 1, 3, 10, 40} {
			sum := Igam(a, x) + Igamc(a, x)
			approx(t, "Igam+Igamc", sum, 1, 1e-10)
		}
	}
}

func TestIgamcEdgeCases(t *testing.T) {
	if got := Igamc(1, 0); got != 1 {
		t.Errorf("Igamc(1,0) = %g, want 1", got)
	}
	if got := Igamc(0, 5); got != 1 {
		t.Errorf("Igamc(0,5) = %g, want 1 (invalid a treated as 1)", got)
	}
	if got := Igam(1, 0); got != 0 {
		t.Errorf("Igam(1,0) = %g, want 0", got)
	}
	// Igamc(1, x) = exp(-x) analytically.
	for _, x := range []float64{0.5, 1, 2, 5} {
		approx(t, "Igamc(1,x)=e^-x", Igamc(1, x), math.Exp(-x), 1e-12)
	}
	// Very large x underflows to 0.
	if got := Igamc(2, 1e6); got != 0 {
		t.Errorf("Igamc(2,1e6) = %g, want 0", got)
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, "Phi(0)", NormalCDF(0), 0.5, 1e-12)
	approx(t, "Phi(1.96)", NormalCDF(1.96), 0.975, 1e-4)
	approx(t, "Phi(-1.96)", NormalCDF(-1.96), 0.025, 1e-4)
	// Symmetry: Phi(x) + Phi(-x) = 1.
	for _, x := range []float64{0.1, 0.7, 2.3, 5} {
		approx(t, "Phi symmetry", NormalCDF(x)+NormalCDF(-x), 1, 1e-12)
		approx(t, "SF complement", NormalSF(x), 1-NormalCDF(x), 1e-12)
	}
}

func TestChiSquaredSFNegative(t *testing.T) {
	if got := ChiSquaredSF(-1, 3); got != 1 {
		t.Errorf("ChiSquaredSF(-1,3) = %g, want 1", got)
	}
}
