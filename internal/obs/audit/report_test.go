package audit

import (
	"math"
	"strings"
	"testing"
	"time"

	"ropuf/internal/obs"
)

func ts(sec int) time.Time {
	return time.Date(2026, 8, 8, 12, 0, sec, 0, time.UTC)
}

func sampleEvents() []Event {
	return []Event{
		{TS: ts(0), Event: EventEnroll, DeviceID: "dev-0000", TraceID: "t0"},
		{TS: ts(0), Event: EventEnroll, DeviceID: "dev-0001", TraceID: "t1"},
		// dev-0000 drains 40 pairs over 10s (4 pairs/s), 80 left at the end.
		{TS: ts(1), Event: EventChallenge, DeviceID: "dev-0000", TraceID: "t2",
			Detail: map[string]float64{"k": 20, "fresh_after": 100}},
		{TS: ts(10), Event: EventChallenge, DeviceID: "dev-0000", TraceID: "t3",
			Detail: map[string]float64{"k": 20, "fresh_after": 80}},
		{TS: ts(5), Event: EventVerifyFail, DeviceID: "dev-0000", TraceID: "tX",
			Reason: "mismatch", Detail: map[string]float64{"distance": 9, "limit": 3}},
		// dev-0001 consumes a little, never flagged.
		{TS: ts(2), Event: EventChallenge, DeviceID: "dev-0001", TraceID: "t4",
			Detail: map[string]float64{"k": 4, "fresh_after": 116}},
		// dev-0000 gets flagged, then cleared.
		{TS: ts(6), Event: EventFlag, DeviceID: "dev-0000", Reason: "harvest",
			TraceID: "t2", Detail: map[string]float64{"challenge_rate": 4, "fleet_median_rate": 0.2}},
		{TS: ts(9), Event: EventUnflag, DeviceID: "dev-0000", Reason: "harvest"},
	}
}

func sampleSpans() []obs.SpanEvent {
	// t0..t4 exist as spans; tX does not (a dropped/foreign trace).
	var spans []obs.SpanEvent
	for _, id := range []string{"t0", "t1", "t2", "t3", "t4"} {
		spans = append(spans, obs.SpanEvent{TraceID: id, ID: "s" + id, Name: "authserve.verify"})
	}
	return spans
}

func TestAnalyzeDevices(t *testing.T) {
	rep := Analyze(sampleEvents(), sampleSpans(), Options{})
	if rep.Events != 8 || rep.Devices != 2 {
		t.Fatalf("Events=%d Devices=%d, want 8, 2", rep.Events, rep.Devices)
	}
	if rep.ByEvent[EventChallenge] != 3 || rep.ByEvent[EventFlag] != 1 {
		t.Fatalf("ByEvent = %v", rep.ByEvent)
	}

	if len(rep.Consumers) != 2 || rep.Consumers[0].ID != "dev-0000" {
		t.Fatalf("top consumer = %+v, want dev-0000 first", rep.Consumers)
	}
	top := rep.Consumers[0]
	if top.PairsConsumed != 40 || top.FreshLast != 80 || top.VerifyFails != 1 {
		t.Fatalf("dev-0000 = %+v", top)
	}
	// 40 pairs over the 10s activity span (ts 0..10) = 4 pairs/s; 80 fresh
	// at that rate is a 20s time-to-empty.
	if math.Abs(top.DrainPerSec-4) > 1e-9 {
		t.Fatalf("DrainPerSec = %g, want 4", top.DrainPerSec)
	}
	if math.Abs(top.TTESeconds-20) > 1e-9 {
		t.Fatalf("TTESeconds = %g, want 20", top.TTESeconds)
	}
	// dev-0001 never drained enough to project: activity span is 0..2 with
	// 4 pairs, so it has a rate, and fresh 116 gives a finite forecast.
	other := rep.Consumers[1]
	if other.ID != "dev-0001" || other.DrainPerSec != 2 || other.TTESeconds != 58 {
		t.Fatalf("dev-0001 = %+v", other)
	}
}

func TestAnalyzeFlagEpisodes(t *testing.T) {
	rep := Analyze(sampleEvents(), nil, Options{})
	if len(rep.Flagged) != 1 || rep.Flagged[0].ID != "dev-0000" {
		t.Fatalf("Flagged = %+v", rep.Flagged)
	}
	eps := rep.Flagged[0].Flags
	if len(eps) != 1 {
		t.Fatalf("episodes = %+v", eps)
	}
	ep := eps[0]
	if ep.Reason != "harvest" || ep.Active() || !ep.Cleared.Equal(ts(9)) {
		t.Fatalf("episode = %+v", ep)
	}
	if ep.Evidence["challenge_rate"] != 4 || ep.TraceID != "t2" {
		t.Fatalf("episode evidence = %+v", ep)
	}
	if rep.Flagged[0].Flagged() {
		t.Fatal("cleared device still reports Flagged()")
	}

	// Drop the unflag: the episode must stay open.
	events := sampleEvents()
	open := Analyze(events[:len(events)-1], nil, Options{})
	if !open.Flagged[0].Flagged() || !open.Flagged[0].Flags[0].Active() {
		t.Fatal("open episode not reported active")
	}
}

func TestAnalyzeTraceCorrelation(t *testing.T) {
	rep := Analyze(sampleEvents(), sampleSpans(), Options{})
	// 7 events carry trace IDs (all but the unflag); 6 of those resolve
	// (tX does not).
	if rep.WithTrace != 7 || rep.TraceMatched != 6 {
		t.Fatalf("WithTrace=%d TraceMatched=%d, want 7, 6", rep.WithTrace, rep.TraceMatched)
	}
	if f := rep.TraceMatchedFraction(); math.Abs(f-6.0/7.0) > 1e-9 {
		t.Fatalf("TraceMatchedFraction = %g", f)
	}
	if rep.SpanTraces != 5 {
		t.Fatalf("SpanTraces = %d, want 5", rep.SpanTraces)
	}
}

func TestAnalyzeTopTruncation(t *testing.T) {
	rep := Analyze(sampleEvents(), nil, Options{Top: 1})
	if len(rep.Consumers) != 1 || rep.Consumers[0].ID != "dev-0000" {
		t.Fatalf("Top=1 consumers = %+v", rep.Consumers)
	}
	// Flagged list is never truncated.
	if len(rep.Flagged) != 1 {
		t.Fatalf("Flagged truncated: %+v", rep.Flagged)
	}
}

func TestBenchResults(t *testing.T) {
	rep := Analyze(sampleEvents(), sampleSpans(), Options{})
	br := rep.BenchResults()
	if br["BenchmarkAuditEvents"].Iterations != 8 {
		t.Fatalf("BenchmarkAuditEvents = %+v", br["BenchmarkAuditEvents"])
	}
	if br["BenchmarkAuditFlaggedDevices"].Iterations != 1 {
		t.Fatalf("BenchmarkAuditFlaggedDevices = %+v", br["BenchmarkAuditFlaggedDevices"])
	}
	if got := br["BenchmarkAuditTraceMatchedPct"].NsPerOp; math.Abs(got-100*6.0/7.0) > 1e-6 {
		t.Fatalf("BenchmarkAuditTraceMatchedPct = %g", got)
	}
	if br["BenchmarkAuditTopConsumerPairs"].Iterations != 40 {
		t.Fatalf("BenchmarkAuditTopConsumerPairs = %+v", br["BenchmarkAuditTopConsumerPairs"])
	}
}

func TestWriteText(t *testing.T) {
	rep := Analyze(sampleEvents(), sampleSpans(), Options{})
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"8 audit events, 2 devices",
		"trace correlation: 6/7",
		"dev-0000",
		"harvest",
		"evidence challenge_rate",
		"trace t2",
		"20s", // dev-0000 exhaustion forecast
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
