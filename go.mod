module ropuf

go 1.24
