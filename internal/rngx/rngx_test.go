package rngx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d, generators with same seed diverged", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other.
	diff := false
	for i := 0; i < 64; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("sibling children produced identical streams")
	}
	// Splitting is deterministic: rebuilding the parent reproduces children.
	e1 := New(7).Split()
	r1 := New(7).Split()
	for i := 0; i < 16; i++ {
		if e1.Uint64() != r1.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(6)
	seen := make([]bool, 8)
	for i := 0; i < 10000; i++ {
		seen[r.Intn(8)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(8) never produced %d in 10000 draws", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestNormMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance %g, want ~1", variance)
	}
}

func TestNormMeanStd(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormMeanStd(10, 2)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("NormMeanStd(10,2) mean %g, want ~10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	check := func(n uint8) bool {
		size := int(n%32) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d, want %d", got, sum)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(13)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	frac := float64(trues) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool true fraction %g, want ~0.5", frac)
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Every bit position of Uint64 output should be ~50% ones.
	r := New(14)
	const n = 20000
	counts := make([]int, 64)
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v>>uint(b)&1 == 1 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.5) > 0.02 {
			t.Errorf("bit %d ones fraction %g, want ~0.5", b, frac)
		}
	}
}

func TestNormFillMatchesSequentialNorm(t *testing.T) {
	// NormFill must consume the generator exactly as sequential NormMeanStd
	// calls would: same values bit for bit, same spare-variate state after,
	// with and without a cached spare going in.
	for _, n := range []int{0, 1, 2, 3, 4, 7, 8, 33} {
		for _, primeSpare := range []bool{false, true} {
			seed := uint64(1000 + n)
			ref := New(seed)
			got := New(seed)
			if primeSpare {
				if a, b := ref.Norm(), got.Norm(); a != b {
					t.Fatalf("n=%d: priming draws diverged: %v vs %v", n, a, b)
				}
			}
			want := make([]float64, n)
			for i := range want {
				want[i] = ref.NormMeanStd(3, 0.25)
			}
			dst := make([]float64, n)
			got.NormFill(dst, 3, 0.25)
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("n=%d prime=%v: value %d = %x, want %x",
						n, primeSpare, i, math.Float64bits(dst[i]), math.Float64bits(want[i]))
				}
			}
			// Post-call state must match too: the spare cache and the raw
			// stream position both show up in the next few draws.
			for i := 0; i < 3; i++ {
				if a, b := ref.Norm(), got.Norm(); a != b {
					t.Fatalf("n=%d prime=%v: post-fill Norm draw %d diverged", n, primeSpare, i)
				}
			}
			if a, b := ref.Uint64(), got.Uint64(); a != b {
				t.Fatalf("n=%d prime=%v: post-fill raw stream diverged", n, primeSpare)
			}
		}
	}
}

func TestNormFillAllocFree(t *testing.T) {
	r := New(7)
	dst := make([]float64, 64)
	if avg := testing.AllocsPerRun(100, func() { r.NormFill(dst, 0, 1) }); avg != 0 {
		t.Fatalf("NormFill allocated %v times per call, want 0", avg)
	}
}

func TestNormFillMoments(t *testing.T) {
	r := New(99)
	dst := make([]float64, 200000)
	r.NormFill(dst, 5, 2)
	var sum, sq float64
	for _, v := range dst {
		sum += v
	}
	mean := sum / float64(len(dst))
	for _, v := range dst {
		sq += (v - mean) * (v - mean)
	}
	std := math.Sqrt(sq / float64(len(dst)))
	if math.Abs(mean-5) > 0.02 {
		t.Fatalf("NormFill mean %g, want ~5", mean)
	}
	if math.Abs(std-2) > 0.02 {
		t.Fatalf("NormFill std %g, want ~2", std)
	}
}
