package authserve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ropuf/internal/core"
	"ropuf/internal/fleet"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

// TestWireFormatGolden pins the complete v1 HTTP wire format — request and
// response bytes for all four routes plus the error shape — against a
// golden file. Deployed clients parse exactly these bytes; if this test
// breaks, the change breaks them too. Evolve the API by adding optional
// fields (then regenerate with -update) or by versioning to /v2.
func TestWireFormatGolden(t *testing.T) {
	// Tiny deterministic device: 4 pairs of 3 stages keeps the golden file
	// reviewable while exercising every field.
	devices, err := fleet.Synthetic(1, 4, 3, 0x60D)
	if err != nil {
		t.Fatal(err)
	}
	d := devices[0]
	srv, ts := newTestServer(t, StoreOptions{Tolerance: 0.25, Shards: 2, Seed: 0x60D}, ServerOptions{})
	// Pin the telemetry clock so last_verify_unix in the device response is
	// a stable byte sequence.
	srv.store.now = func() time.Time { return time.Unix(1754650000, 0) }
	c := ts.Client()

	var log bytes.Buffer
	record := func(title string, code int, body []byte) {
		fmt.Fprintf(&log, "== %s (%d) ==\n%s\n", title, code, bytes.TrimRight(body, "\n"))
	}
	reqJSON := func(v any) []byte {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	enrollReq := EnrollRequest{ID: d.ID, Mode: "case2"}
	for _, p := range d.Pairs {
		enrollReq.Pairs = append(enrollReq.Pairs, PairWire{Alpha: p.Alpha, Beta: p.Beta})
	}
	body := reqJSON(enrollReq)
	record("POST /v1/enroll request", 0, body)
	code, resp := post(t, c, ts.URL+"/v1/enroll", body)
	record("POST /v1/enroll response", code, resp)

	chBody := reqJSON(ChallengeRequest{ID: d.ID, K: 2})
	record("POST /v1/challenge request", 0, chBody)
	code, resp = post(t, c, ts.URL+"/v1/challenge", chBody)
	record("POST /v1/challenge response", code, resp)
	cr := mustUnmarshal[ChallengeResponse](t, resp)

	enr, err := core.Enroll(d.Pairs, core.Case2, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vBody := reqJSON(VerifyRequest{ID: d.ID, ChallengeID: cr.ChallengeID,
		Response: respond(t, enr, cr.Pairs, d.Pairs)})
	record("POST /v1/verify request", 0, vBody)
	code, resp = post(t, c, ts.URL+"/v1/verify", vBody)
	record("POST /v1/verify response", code, resp)

	code, resp = get(t, c, ts.URL+"/v1/devices/"+d.ID)
	record("GET /v1/devices/{id} response", code, resp)

	// Error shape: the consumed challenge ID replayed.
	code, resp = post(t, c, ts.URL+"/v1/verify", vBody)
	record("POST /v1/verify replay response", code, resp)
	if code != http.StatusNotFound {
		t.Fatalf("replay returned %d, want 404", code)
	}

	golden := filepath.Join("testdata", "wire_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, log.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(log.Bytes(), want) {
		t.Fatalf("v1 wire format drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If this change is intentional AND backward compatible (new optional fields only), "+
			"regenerate with: go test ./internal/authserve -run TestWireFormatGolden -update",
			log.Bytes(), want)
	}
}
