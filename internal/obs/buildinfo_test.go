package obs

import (
	"runtime/debug"
	"strings"
	"testing"
)

// TestBuildInfoExpositionGolden pins the exact exposition of the info
// gauge for fixed label values.
func TestBuildInfoExpositionGolden(t *testing.T) {
	r := NewRegistry()
	registerBuildInfo(r, "go1.24.0", "abc123")
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP ropuf_build_info Build metadata as labels; the value is always 1.\n" +
		"# TYPE ropuf_build_info gauge\n" +
		`ropuf_build_info{go_version="go1.24.0",vcs_revision="abc123"} 1` + "\n"
	if b.String() != want {
		t.Fatalf("build-info exposition drifted.\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestBuildInfoLabels(t *testing.T) {
	cases := []struct {
		name            string
		bi              *debug.BuildInfo
		wantGo, wantRev string
	}{
		{
			"no vcs stamping",
			&debug.BuildInfo{GoVersion: "go1.24.0"},
			"go1.24.0", "unknown",
		},
		{
			"clean revision",
			&debug.BuildInfo{GoVersion: "go1.24.0", Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "deadbeef"},
				{Key: "vcs.modified", Value: "false"},
			}},
			"go1.24.0", "deadbeef",
		},
		{
			"dirty tree",
			&debug.BuildInfo{GoVersion: "go1.24.0", Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "deadbeef"},
				{Key: "vcs.modified", Value: "true"},
			}},
			"go1.24.0", "deadbeef+dirty",
		},
		{
			"dirty without revision stays unknown",
			&debug.BuildInfo{GoVersion: "", Settings: []debug.BuildSetting{
				{Key: "vcs.modified", Value: "true"},
			}},
			"unknown", "unknown",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gv, rev := buildInfoLabels(tc.bi)
			if gv != tc.wantGo || rev != tc.wantRev {
				t.Fatalf("got (%q, %q), want (%q, %q)", gv, rev, tc.wantGo, tc.wantRev)
			}
		})
	}
}

// TestRegisterBuildInfoIdempotent: every component calls it, so double
// registration must not panic and must keep one series.
func TestRegisterBuildInfoIdempotent(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	RegisterBuildInfo(r)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "ropuf_build_info{"); n != 1 {
		t.Fatalf("got %d ropuf_build_info series, want 1:\n%s", n, b.String())
	}
}
