package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// collectSink records events in emit order.
type collectSink struct {
	mu     sync.Mutex
	events []SpanEvent
}

func (s *collectSink) Emit(ev SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

func TestSpanNesting(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	ctx, root := tr.Start(context.Background(), "batch", KV("devices", "2"))
	ctx1, child1 := tr.Start(ctx, "device", KV("device", "d0"))
	_, grandchild := tr.Start(ctx1, "select")
	grandchild.End()
	child1.End()
	_, child2 := tr.Start(ctx, "device", KV("device", "d1"))
	child2.End()
	root.End()

	if len(sink.events) != 4 {
		t.Fatalf("%d events, want 4", len(sink.events))
	}
	byName := map[string]SpanEvent{}
	for _, ev := range sink.events {
		if ev.Name == "device" {
			byName[ev.Attrs["device"]] = ev
		} else {
			byName[ev.Name] = ev
		}
	}
	rootEv := byName["batch"]
	if rootEv.ParentID != 0 {
		t.Fatalf("root parent = %d, want 0", rootEv.ParentID)
	}
	if byName["d0"].ParentID != rootEv.ID || byName["d1"].ParentID != rootEv.ID {
		t.Fatalf("device spans not parented to root: %+v", sink.events)
	}
	if byName["select"].ParentID != byName["d0"].ID {
		t.Fatalf("grandchild parent = %d, want %d", byName["select"].ParentID, byName["d0"].ID)
	}
	if rootEv.Attrs["devices"] != "2" {
		t.Fatalf("root attrs = %v", rootEv.Attrs)
	}
}

// TestSpanOutOfOrderEnds ends a parent before its children: every span must
// still emit exactly once with the right parent link.
func TestSpanOutOfOrderEnds(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	ctx, parent := tr.Start(context.Background(), "parent")
	_, childA := tr.Start(ctx, "a")
	_, childB := tr.Start(ctx, "b")
	parent.End() // out of order: parent first
	childB.End()
	childA.End()
	childA.End() // double End must not re-emit
	parent.End()

	if len(sink.events) != 3 {
		t.Fatalf("%d events, want 3 (double End re-emitted?)", len(sink.events))
	}
	if sink.events[0].Name != "parent" {
		t.Fatalf("first emitted = %s, want parent", sink.events[0].Name)
	}
	for _, ev := range sink.events[1:] {
		if ev.ParentID != sink.events[0].ID {
			t.Fatalf("span %s parent = %d, want %d", ev.Name, ev.ParentID, sink.events[0].ID)
		}
	}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "x", KV("k", "v"))
	if span != nil {
		t.Fatal("nil tracer minted a span")
	}
	if ctx != context.Background() {
		t.Fatal("nil tracer changed the context")
	}
	span.SetAttr("k", "v") // must not panic
	span.End()
}

func TestSpanDurationUsesClock(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	now := time.Unix(1000, 0)
	tr.now = func() time.Time { return now }
	_, span := tr.Start(context.Background(), "timed")
	now = now.Add(250 * time.Millisecond)
	span.End()
	if d := sink.events[0].Duration(); d != 250*time.Millisecond {
		t.Fatalf("duration = %v, want 250ms", d)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONLSink(&buf))
	ctx, parent := tr.Start(context.Background(), "outer")
	_, child := tr.Start(ctx, "inner", KV("device", "d7"))
	child.End()
	parent.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var first, second SpanEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Name != "inner" || first.Attrs["device"] != "d7" {
		t.Fatalf("first line = %+v", first)
	}
	if second.Name != "outer" || first.ParentID != second.ID {
		t.Fatalf("parent link lost across JSONL: %+v -> %+v", first, second)
	}
}

func TestRingSinkEviction(t *testing.T) {
	ring := NewRingSink(3)
	tr := NewTracer(ring)
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), strings.Repeat("x", i+1))
		s.End()
	}
	if ring.Total() != 5 {
		t.Fatalf("Total = %d, want 5", ring.Total())
	}
	events := ring.Events()
	if len(events) != 3 {
		t.Fatalf("%d retained, want 3", len(events))
	}
	for i, want := range []string{"xxx", "xxxx", "xxxxx"} {
		if events[i].Name != want {
			t.Fatalf("retained[%d] = %s, want %s (oldest first)", i, events[i].Name, want)
		}
	}
}

// TestTracerConcurrentSpans exercises concurrent Start/End across
// goroutines (race-detector coverage) and checks ID uniqueness.
func TestTracerConcurrentSpans(t *testing.T) {
	ring := NewRingSink(4096)
	tr := NewTracer(ring)
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, s := tr.Start(ctx, "worker")
				s.SetAttr("i", "x")
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	events := ring.Events()
	if len(events) != 801 {
		t.Fatalf("%d events, want 801", len(events))
	}
	seen := map[uint64]bool{}
	for _, ev := range events {
		if seen[ev.ID] {
			t.Fatalf("duplicate span ID %d", ev.ID)
		}
		seen[ev.ID] = true
	}
}
