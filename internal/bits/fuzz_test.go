package bits

import (
	"strings"
	"testing"
)

func FuzzFromString(f *testing.F) {
	f.Add("0")
	f.Add("1")
	f.Add("0101010101")
	f.Add("")
	f.Add("1111111111111111111111111111111111111111111111111111111111111111111")
	f.Add("01x")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := FromString(in)
		valid := strings.Trim(in, "01") == ""
		if valid && err != nil {
			t.Fatalf("valid input %q rejected: %v", in, err)
		}
		if !valid && err == nil {
			t.Fatalf("invalid input %q accepted", in)
		}
		if err != nil {
			return
		}
		if s.Len() != len(in) {
			t.Fatalf("length %d, want %d", s.Len(), len(in))
		}
		if s.String() != in {
			t.Fatalf("roundtrip %q -> %q", in, s.String())
		}
		if d := MustHammingDistance(s, s); d != 0 {
			t.Fatalf("self-distance %d", d)
		}
	})
}

func FuzzSliceConcat(f *testing.F) {
	f.Add("0110", uint8(1), uint8(3))
	f.Add("1", uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, in string, loSel, hiSel uint8) {
		s, err := FromString(in)
		if err != nil {
			return
		}
		if s.Len() == 0 {
			return
		}
		lo := int(loSel) % (s.Len() + 1)
		hi := int(hiSel) % (s.Len() + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		left := s.Slice(0, lo)
		mid := s.Slice(lo, hi)
		right := s.Slice(hi, s.Len())
		if !Concat(left, mid, right).Equal(s) {
			t.Fatalf("slice/concat roundtrip broke for %q [%d:%d]", in, lo, hi)
		}
	})
}
