package circuit

import (
	"testing"

	"ropuf/internal/silicon"
)

func TestAgedDelayZeroStressIdentity(t *testing.T) {
	r := testRing(t, 5, 20)
	fresh := silicon.Aging{}
	for i := range r.Units {
		for _, sel := range []bool{true, false} {
			aged, err := r.Units[i].AgedDelayPS(sel, silicon.Nominal, fresh)
			if err != nil {
				t.Fatal(err)
			}
			if aged != r.Units[i].DelayPS(sel, silicon.Nominal) {
				t.Fatalf("stage %d sel=%v: zero stress changed delay", i, sel)
			}
		}
	}
}

func TestAgedHalfPeriodSlower(t *testing.T) {
	r := testRing(t, 5, 21)
	cfg := AllSelected(5)
	fresh, err := r.HalfPeriodPS(cfg, silicon.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	aged, err := r.AgedHalfPeriodPS(cfg, silicon.Nominal, silicon.Aging{Years: 5, Activity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aged <= fresh {
		t.Fatalf("aged half-period %.2f not slower than fresh %.2f", aged, fresh)
	}
}

func TestAgedTrueDdiffs(t *testing.T) {
	r := testRing(t, 4, 22)
	stress := silicon.Aging{Years: 2, Activity: 1}
	dd, err := r.AgedTrueDdiffsPS(silicon.Nominal, stress)
	if err != nil {
		t.Fatal(err)
	}
	if len(dd) != 4 {
		t.Fatalf("len = %d, want 4", len(dd))
	}
	for i, v := range dd {
		want, err := r.Units[i].AgedDdiffPS(silicon.Nominal, stress)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("stage %d mismatch", i)
		}
	}
	// Zero stress reduces to the unaged ground truth.
	dd0, err := r.AgedTrueDdiffsPS(silicon.Nominal, silicon.Aging{})
	if err != nil {
		t.Fatal(err)
	}
	truth := r.TrueDdiffsPS(silicon.Nominal)
	for i := range truth {
		if dd0[i] != truth[i] {
			t.Fatalf("stage %d: zero-stress aged ddiff differs from truth", i)
		}
	}
}

func TestAgedValidation(t *testing.T) {
	r := testRing(t, 3, 23)
	bad := silicon.Aging{Years: -1}
	if _, err := r.AgedHalfPeriodPS(AllSelected(3), silicon.Nominal, bad); err == nil {
		t.Fatal("bad stress accepted")
	}
	if _, err := r.AgedHalfPeriodPS(NewConfig(2), silicon.Nominal, silicon.Aging{}); err == nil {
		t.Fatal("wrong config length accepted")
	}
	if _, err := r.AgedTrueDdiffsPS(silicon.Nominal, bad); err == nil {
		t.Fatal("bad stress accepted by AgedTrueDdiffsPS")
	}
}
