package flight

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeSource is a mutable snapshot the tests tick against a fake clock.
type fakeSource struct {
	mu   sync.Mutex
	fams []Family
}

func (f *fakeSource) set(fams []Family) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fams = fams
}

func (f *fakeSource) snapshot() []Family {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fams
}

// clock is a manually stepped time source.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1700000000, 0).UTC()} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func counterFam(name string, v float64) Family {
	return Family{Name: name, Kind: Counter, Series: []Series{{Value: v}}}
}

func gaugeFam(name string, v float64) Family {
	return Family{Name: name, Kind: Gauge, Series: []Series{{Value: v}}}
}

func histFam(name string, buckets []Bucket, count int64, sum float64) Family {
	return Family{Name: name, Kind: Histogram, Series: []Series{
		{Count: count, Sum: sum, Buckets: buckets},
	}}
}

func TestRecorderCounterRate(t *testing.T) {
	src := &fakeSource{}
	clk := newClock()
	rec := NewRecorder(src.snapshot, Options{Now: clk.now})

	src.set([]Family{counterFam("reqs_total", 0)})
	rec.Sample() // baseline: no rate yet
	for i := 1; i <= 5; i++ {
		clk.advance(time.Second)
		src.set([]Family{counterFam("reqs_total", float64(10*i))})
		rec.Sample()
	}
	out := rec.Query(QueryOptions{Series: []string{"reqs_total:rate"}})
	if len(out) != 1 {
		t.Fatalf("got %d series, want 1", len(out))
	}
	if len(out[0].Points) != 5 {
		t.Fatalf("got %d points, want 5 (baseline sample has no rate)", len(out[0].Points))
	}
	for _, p := range out[0].Points {
		if p.Value != 10 {
			t.Fatalf("rate point = %g, want 10", p.Value)
		}
	}
}

func TestRecorderCounterReset(t *testing.T) {
	src := &fakeSource{}
	clk := newClock()
	rec := NewRecorder(src.snapshot, Options{Now: clk.now})

	src.set([]Family{counterFam("reqs_total", 100)})
	rec.Sample()
	clk.advance(time.Second)
	// Process restart: cumulative value fell. The rate must be the new
	// cumulative over the tick, never negative.
	src.set([]Family{counterFam("reqs_total", 7)})
	rec.Sample()
	out := rec.Query(QueryOptions{Series: []string{"reqs_total:rate"}})
	if len(out) != 1 || len(out[0].Points) != 1 {
		t.Fatalf("unexpected result shape: %+v", out)
	}
	if got := out[0].Points[0].Value; got != 7 {
		t.Fatalf("post-reset rate = %g, want 7", got)
	}
}

func TestRecorderGaugeAndHistogram(t *testing.T) {
	src := &fakeSource{}
	clk := newClock()
	rec := NewRecorder(src.snapshot, Options{Now: clk.now})

	bkts := func(c1, c2, cInf int64) []Bucket {
		return []Bucket{{0.01, c1}, {0.1, c2}, {math.Inf(1), cInf}}
	}
	src.set([]Family{
		gaugeFam("depth", 3),
		histFam("lat_seconds", bkts(0, 0, 0), 0, 0),
	})
	rec.Sample()
	clk.advance(2 * time.Second)
	// 10 observations land under 10ms, 10 more between 10ms and 100ms.
	src.set([]Family{
		gaugeFam("depth", 5),
		histFam("lat_seconds", bkts(10, 20, 20), 20, 1),
	})
	rec.Sample()

	if out := rec.Query(QueryOptions{Series: []string{"depth"}}); len(out) != 1 || len(out[0].Points) != 2 {
		t.Fatalf("gauge series shape wrong: %+v", out)
	} else if out[0].Points[1].Value != 5 {
		t.Fatalf("gauge point = %g, want 5", out[0].Points[1].Value)
	}
	out := rec.Query(QueryOptions{Series: []string{"lat_seconds"}})
	byName := map[string][]Point{}
	for _, s := range out {
		byName[s.Name] = s.Points
	}
	if rate := byName["lat_seconds:rate"]; len(rate) != 1 || rate[0].Value != 10 {
		t.Fatalf("hist rate = %+v, want one point of 10/s", rate)
	}
	// p50 at rank 10 of 20: exactly the first bucket's full width.
	if p50 := byName["lat_seconds:p50"]; len(p50) != 1 || math.Abs(p50[0].Value-0.01) > 1e-12 {
		t.Fatalf("p50 = %+v, want 0.01", p50)
	}
	if p99 := byName["lat_seconds:p99"]; len(p99) != 1 || p99[0].Value <= 0.01 || p99[0].Value > 0.1 {
		t.Fatalf("p99 = %+v, want within (0.01, 0.1]", p99)
	}
	// A quiet tick: rate 0, quantiles absent (NaN skipped).
	clk.advance(time.Second)
	rec.Sample()
	out = rec.Query(QueryOptions{Series: []string{"lat_seconds:p50"}})
	if len(out) != 1 || len(out[0].Points) != 1 {
		t.Fatalf("quiet tick must not add a quantile point: %+v", out)
	}
	out = rec.Query(QueryOptions{Series: []string{"lat_seconds:rate"}})
	if len(out) != 1 || len(out[0].Points) != 2 || out[0].Points[1].Value != 0 {
		t.Fatalf("quiet tick rate: %+v, want trailing 0", out)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	src := &fakeSource{}
	clk := newClock()
	rec := NewRecorder(src.snapshot, Options{Now: clk.now, Capacity: 4})
	for i := 0; i < 10; i++ {
		src.set([]Family{gaugeFam("g", float64(i))})
		rec.Sample()
		clk.advance(time.Second)
	}
	out := rec.Query(QueryOptions{})
	if len(out) != 1 {
		t.Fatalf("got %d series, want 1", len(out))
	}
	pts := out[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want capacity 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.Value != want {
			t.Fatalf("point %d = %g, want %g (oldest evicted first)", i, p.Value, want)
		}
		if i > 0 && !pts[i-1].TS.Before(p.TS) {
			t.Fatalf("points out of order at %d", i)
		}
	}
	if rec.Samples() != 10 {
		t.Fatalf("Samples() = %d, want 10", rec.Samples())
	}
}

func TestRecorderQueryRange(t *testing.T) {
	src := &fakeSource{}
	clk := newClock()
	start := clk.now()
	rec := NewRecorder(src.snapshot, Options{Now: clk.now})
	for i := 0; i < 10; i++ {
		src.set([]Family{gaugeFam("g", float64(i))})
		rec.Sample()
		clk.advance(time.Second)
	}
	out := rec.Query(QueryOptions{Since: start.Add(5 * time.Second), Until: start.Add(7 * time.Second)})
	if len(out) != 1 {
		t.Fatalf("got %d series, want 1", len(out))
	}
	if len(out[0].Points) != 3 { // samples at +5, +6, +7
		t.Fatalf("range query returned %d points, want 3", len(out[0].Points))
	}
	if out[0].Points[0].Value != 5 || out[0].Points[2].Value != 7 {
		t.Fatalf("range edges wrong: %+v", out[0].Points)
	}
}

func TestRecorderSeriesSelector(t *testing.T) {
	src := &fakeSource{}
	clk := newClock()
	rec := NewRecorder(src.snapshot, Options{Now: clk.now})
	src.set([]Family{
		counterFam("a_total", 1),
		gaugeFam("b", 2),
		histFam("h_seconds", []Bucket{{1, 1}, {math.Inf(1), 1}}, 1, 0.5),
	})
	rec.Sample()
	clk.advance(time.Second)
	src.set([]Family{
		counterFam("a_total", 3),
		gaugeFam("b", 2),
		histFam("h_seconds", []Bucket{{1, 3}, {math.Inf(1), 3}}, 3, 1.5),
	})
	rec.Sample()

	// Base family name selects every derived series of the family.
	out := rec.Query(QueryOptions{Series: []string{"h_seconds"}})
	names := map[string]bool{}
	for _, s := range out {
		names[s.Name] = true
	}
	for _, want := range []string{"h_seconds:rate", "h_seconds:p50", "h_seconds:p90", "h_seconds:p99"} {
		if !names[want] {
			t.Fatalf("base-name selector missed %s (got %v)", want, names)
		}
	}
	if names["a_total:rate"] || names["b"] {
		t.Fatalf("selector leaked unrelated series: %v", names)
	}
	// Exact derived name selects just that one.
	out = rec.Query(QueryOptions{Series: []string{"a_total:rate"}})
	if len(out) != 1 || out[0].Name != "a_total:rate" {
		t.Fatalf("exact selector: %+v", out)
	}
}

func TestRecorderConcurrentSampleQuery(t *testing.T) {
	src := &fakeSource{}
	rec := NewRecorder(src.snapshot, Options{Capacity: 16})
	src.set([]Family{counterFam("c_total", 1), gaugeFam("g", 1)})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Sample()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Query(QueryOptions{})
			}
		}()
	}
	wg.Wait()
}
