// Package circuit implements the configurable ring oscillator of the
// paper's Figures 1 and 2 at the delay-unit level.
//
// A DelayUnit is one stage: an inverter followed by a 2-to-1 MUX. When the
// stage's selection bit is 1 the signal passes through the inverter and the
// MUX "1" path (delay d + d1); when it is 0 the inverter is bypassed and
// the signal takes the MUX "0" path (delay d0). The stage's contribution to
// the ring delay therefore differs by
//
//	ddiff = d + d1 − d0
//
// between the selected and bypassed configurations — the quantity the
// paper's selection algorithms maximize over.
//
// A Ring is a chain of delay units closed through an enable stage (a NAND
// gate in real implementations, which also supplies the extra logical
// inversion that keeps the loop oscillating when an even number of
// inverters is selected).
package circuit

import (
	"fmt"

	"ropuf/internal/silicon"
)

// Config is a configuration vector: Config[i] selects (true) or bypasses
// (false) the inverter of stage i.
type Config []bool

// NewConfig returns an all-zero configuration of length n.
func NewConfig(n int) Config { return make(Config, n) }

// AllSelected returns a configuration with every stage selected.
func AllSelected(n int) Config {
	c := make(Config, n)
	for i := range c {
		c[i] = true
	}
	return c
}

// Ones returns the number of selected stages.
func (c Config) Ones() int {
	n := 0
	for _, b := range c {
		if b {
			n++
		}
	}
	return n
}

// Clone returns an independent copy of c.
func (c Config) Clone() Config {
	return append(Config(nil), c...)
}

// String renders the vector as '1'/'0' characters, stage 0 first, matching
// the paper's notation ("110" selects stages 0 and 1 of a 3-stage ring).
func (c Config) String() string {
	b := make([]byte, len(c))
	for i, v := range c {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// ParseConfig parses a '1'/'0' string into a Config.
func ParseConfig(s string) (Config, error) {
	c := make(Config, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			c[i] = true
		case '0':
			c[i] = false
		default:
			return nil, fmt.Errorf("circuit: invalid configuration character %q", s[i])
		}
	}
	return c, nil
}

// DelayUnit is one configurable stage, holding the three delay elements of
// Fig. 2 as devices on a die: the inverter and the two MUX paths.
type DelayUnit struct {
	Die      *silicon.Die
	Inverter silicon.Device
	Path1    silicon.Device // MUX propagation when select = 1 (includes wiring)
	Path0    silicon.Device // MUX propagation when select = 0 (bypass wire)
}

// DelayPS returns the stage's delay for the given selection bit and
// environment, in picoseconds.
func (u *DelayUnit) DelayPS(selected bool, env silicon.Env) float64 {
	if selected {
		return u.Die.DelayAtPS(u.Inverter, env) + u.Die.DelayAtPS(u.Path1, env)
	}
	return u.Die.DelayAtPS(u.Path0, env)
}

// DdiffPS returns the stage's true delay difference d + d1 − d0 under env.
// The measurement protocol in package measure estimates this quantity from
// whole-ring observations; this accessor is the ground truth used by tests.
func (u *DelayUnit) DdiffPS(env silicon.Env) float64 {
	return u.DelayPS(true, env) - u.DelayPS(false, env)
}

// Ring is a configurable ring oscillator: an enable stage plus n delay
// units.
type Ring struct {
	Units []DelayUnit
	// Enable is the always-in-loop enable gate (NAND). It contributes a
	// fixed delay and one logical inversion.
	Enable silicon.Device
	Die    *silicon.Die
}

// NumStages returns the number of configurable delay units in the ring.
func (r *Ring) NumStages() int { return len(r.Units) }

// validateConfig checks cfg length against the ring.
func (r *Ring) validateConfig(cfg Config) error {
	if len(cfg) != len(r.Units) {
		return fmt.Errorf("circuit: configuration length %d does not match %d stages", len(cfg), len(r.Units))
	}
	return nil
}

// Oscillates reports whether the loop has an odd number of logical
// inversions under cfg (selected inverters plus the enable NAND) and hence
// actually oscillates. The paper's arithmetic ignores this constraint; the
// selection API exposes it as an option.
func (r *Ring) Oscillates(cfg Config) bool {
	return (cfg.Ones()+1)%2 == 1
}

// HalfPeriodPS returns the one-way propagation delay around the loop under
// cfg and env, in picoseconds. The oscillation period is twice this (the
// edge must travel the loop once per half-cycle).
//
// The call warms the die's per-environment delay table, so a whole-ring
// evaluation costs O(die devices) math.Pow calls the first time an
// environment is seen and O(stages) multiplies afterwards. Results are
// bit-identical to HalfPeriodNaivePS, which bypasses the cache.
func (r *Ring) HalfPeriodPS(cfg Config, env silicon.Env) (float64, error) {
	if err := r.validateConfig(cfg); err != nil {
		return 0, err
	}
	r.Die.EnvFactors(env)
	sum := r.Die.DelayAtPS(r.Enable, env)
	for i := range r.Units {
		sum += r.Units[i].DelayPS(cfg[i], env)
	}
	return sum, nil
}

// HalfPeriodNaivePS is HalfPeriodPS with the die's environment-factor cache
// bypassed: every device recomputes its alpha-power-law factors from
// scratch, which is the pre-cache cost model (4 math.Pow calls per device
// per evaluation). It is kept as the reference implementation for
// equivalence tests and the *Naive benchmarks; the summation order matches
// HalfPeriodPS exactly, so the result is bit-identical.
func (r *Ring) HalfPeriodNaivePS(cfg Config, env silicon.Env) (float64, error) {
	if err := r.validateConfig(cfg); err != nil {
		return 0, err
	}
	sum := r.Die.DelayAtUncachedPS(r.Enable, env)
	for i := range r.Units {
		u := &r.Units[i]
		if cfg[i] {
			sum += r.Die.DelayAtUncachedPS(u.Inverter, env) + r.Die.DelayAtUncachedPS(u.Path1, env)
		} else {
			sum += r.Die.DelayAtUncachedPS(u.Path0, env)
		}
	}
	return sum, nil
}

// StageDelaysPS fills sel1 and sel0 (each of length NumStages) with every
// stage's selected and bypassed delay under env, in picoseconds, and
// returns the enable gate's delay. It warms the die's per-environment
// table once, so the whole call is O(stages) multiplies on a warm cache —
// this is the bulk primitive behind the incremental leave-one-out
// measurement in package measure. sel1[i] is bit-identical to
// Units[i].DelayPS(true, env) and sel0[i] to Units[i].DelayPS(false, env).
func (r *Ring) StageDelaysPS(env silicon.Env, sel1, sel0 []float64) (float64, error) {
	if len(sel1) != len(r.Units) || len(sel0) != len(r.Units) {
		return 0, fmt.Errorf("circuit: stage-delay buffer lengths %d/%d do not match %d stages",
			len(sel1), len(sel0), len(r.Units))
	}
	r.Die.EnvFactors(env)
	for i := range r.Units {
		u := &r.Units[i]
		sel1[i] = r.Die.DelayAtPS(u.Inverter, env) + r.Die.DelayAtPS(u.Path1, env)
		sel0[i] = r.Die.DelayAtPS(u.Path0, env)
	}
	return r.Die.DelayAtPS(r.Enable, env), nil
}

// PeriodPS returns the oscillation period under cfg and env in picoseconds.
// The value is well-defined even for non-oscillating (even-inversion)
// configurations; it is then the period the ring would have with an ideal
// enable inversion, which is the idealization the paper's measurement
// arithmetic uses.
func (r *Ring) PeriodPS(cfg Config, env silicon.Env) (float64, error) {
	hp, err := r.HalfPeriodPS(cfg, env)
	if err != nil {
		return 0, err
	}
	return 2 * hp, nil
}

// FrequencyMHz returns the oscillation frequency under cfg and env in MHz.
func (r *Ring) FrequencyMHz(cfg Config, env silicon.Env) (float64, error) {
	p, err := r.PeriodPS(cfg, env)
	if err != nil {
		return 0, err
	}
	return 1e6 / p, nil // 1/ps → THz; ×1e6 → MHz
}

// TrueDdiffsPS returns the ground-truth per-stage delay differences under
// env. Tests compare the measurement protocol's estimates against this.
func (r *Ring) TrueDdiffsPS(env silicon.Env) []float64 {
	r.Die.EnvFactors(env)
	out := make([]float64, len(r.Units))
	for i := range r.Units {
		out[i] = r.Units[i].DdiffPS(env)
	}
	return out
}

// Builder assembles rings from consecutive devices on a die. Each stage
// consumes three devices (inverter, MUX path-1, MUX path-0) and the ring
// one more for the enable gate, mirroring how a placer would map the
// structure onto adjacent fabric cells.
type Builder struct {
	Die  *silicon.Die
	next int
}

// NewBuilder returns a Builder allocating devices from die sequentially.
func NewBuilder(die *silicon.Die) *Builder { return &Builder{Die: die} }

// Remaining returns how many unallocated devices are left on the die.
func (b *Builder) Remaining() int { return b.Die.NumDevices() - b.next }

// take returns the next unallocated device.
func (b *Builder) take() (silicon.Device, error) {
	if b.next >= b.Die.NumDevices() {
		return silicon.Device{}, fmt.Errorf("circuit: die exhausted after %d devices", b.next)
	}
	dev := *b.Die.Device(b.next)
	b.next++
	return dev, nil
}

// BuildRing allocates an n-stage configurable ring. MUX path delays are a
// fixed fraction of an inverter delay: the same die-wide variation model
// applies, scaled by muxScale (path-1) and wireScale (path-0).
func (b *Builder) BuildRing(n int, muxScale, wireScale float64) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("circuit: ring must have at least one stage, got %d", n)
	}
	if muxScale <= 0 || wireScale <= 0 {
		return nil, fmt.Errorf("circuit: MUX/wire delay scales must be positive")
	}
	r := &Ring{Die: b.Die, Units: make([]DelayUnit, n)}
	en, err := b.take()
	if err != nil {
		return nil, err
	}
	r.Enable = en
	for i := 0; i < n; i++ {
		inv, err := b.take()
		if err != nil {
			return nil, err
		}
		p1, err := b.take()
		if err != nil {
			return nil, err
		}
		p0, err := b.take()
		if err != nil {
			return nil, err
		}
		p1.Base *= muxScale
		p0.Base *= wireScale
		r.Units[i] = DelayUnit{Die: b.Die, Inverter: inv, Path1: p1, Path0: p0}
	}
	return r, nil
}

// DefaultMuxScale and DefaultWireScale are the default ratios of MUX-path
// and bypass-wire delay to one inverter delay. A LUT-implemented MUX has
// delay comparable to an inverter; the bypass path is slightly faster.
const (
	DefaultMuxScale  = 0.60
	DefaultWireScale = 0.50
)
