package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ropuf/internal/bits"
	"ropuf/internal/circuit"
)

// Binary enrollment codec. The JSON format (serialize.go) is the
// archival/interchange representation; this is the hot-path one: the
// authserve write-ahead log serializes an enrollment into every enroll
// record, so encoding cost and record size are paid once per device
// enrollment while holding the shard lock. The layout is little-endian
// and bit-packs every boolean vector (configurations, mask, response),
// which makes a record roughly 8x smaller than the equivalent JSON and
// encodes without reflection:
//
//	magic(1) version(1) mode(1) threshold(f64)
//	nSelections(u32) stages(u16)
//	mask: ceil(n/8) bytes, LSB-first
//	per selection: flags(1: bit0 hasConfig, bit1 bit) margin(f64)
//	               [x: ceil(stages/8)] [y: ceil(stages/8)]
//	respBits(u32) response: ceil(respBits/8) bytes, LSB-first
//
// Both decoders funnel through the same semantic validation
// (validateEnrollment), so a binary record admits exactly the states the
// JSON loader admits.

const (
	binaryMagic   = 0xE5 // first byte; JSON starts with '{', so misrouted payloads fail fast
	binaryVersion = 1

	// maxBinaryVectors caps decoded selection/response counts so hostile
	// or corrupt lengths fail with an error instead of a huge allocation.
	maxBinaryVectors = 1 << 24
)

// AppendBinary appends the binary encoding of e to dst and returns the
// extended slice.
func (e *Enrollment) AppendBinary(dst []byte) ([]byte, error) {
	stages := 0
	for i, sel := range e.Selections {
		if sel.X == nil {
			continue
		}
		if len(sel.X) != len(sel.Y) {
			return nil, fmt.Errorf("core: selection %d config lengths differ (%d vs %d)", i, len(sel.X), len(sel.Y))
		}
		if stages == 0 {
			stages = len(sel.X)
		} else if len(sel.X) != stages {
			return nil, fmt.Errorf("core: selection %d has %d stages, earlier selections %d", i, len(sel.X), stages)
		}
	}
	switch {
	case len(e.Selections) != len(e.Mask):
		return nil, fmt.Errorf("core: mask length %d != selections %d", len(e.Mask), len(e.Selections))
	case len(e.Selections) > maxBinaryVectors:
		return nil, fmt.Errorf("core: %d selections exceed the binary format limit", len(e.Selections))
	case stages > math.MaxUint16:
		return nil, fmt.Errorf("core: %d stages exceed the binary format limit", stages)
	case stages == 0 && hasAnyConfig(e.Selections):
		return nil, errors.New("core: zero-length ring configuration")
	}

	var scratch [8]byte
	dst = append(dst, binaryMagic, binaryVersion, byte(e.Mode))
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(e.Threshold))
	dst = append(dst, scratch[:8]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(e.Selections)))
	dst = append(dst, scratch[:4]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(stages))
	dst = append(dst, scratch[:2]...)
	dst = appendPackedBools(dst, e.Mask)
	for _, sel := range e.Selections {
		flags := byte(0)
		if sel.X != nil {
			flags |= 1
		}
		if sel.Bit {
			flags |= 2
		}
		dst = append(dst, flags)
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(sel.Margin))
		dst = append(dst, scratch[:8]...)
		if sel.X != nil {
			dst = appendPackedBools(dst, sel.X)
			dst = appendPackedBools(dst, sel.Y)
		}
	}
	respLen := 0
	if e.Response != nil {
		respLen = e.Response.Len()
	}
	if respLen > maxBinaryVectors {
		return nil, fmt.Errorf("core: %d response bits exceed the binary format limit", respLen)
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(respLen))
	dst = append(dst, scratch[:4]...)
	var cur byte
	for i := 0; i < respLen; i++ {
		if e.Response.Bit(i) {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if respLen&7 != 0 {
		dst = append(dst, cur)
	}
	return dst, nil
}

// LoadEnrollmentBinary decodes an enrollment written by AppendBinary and
// applies the same semantic validation as the JSON loader.
func LoadEnrollmentBinary(data []byte) (*Enrollment, error) {
	d := binCursor{data: data}
	magic, version, mode := d.byte(), d.byte(), d.byte()
	if d.err == nil && (magic != binaryMagic || version != binaryVersion) {
		return nil, fmt.Errorf("core: not a binary enrollment (magic %#x version %d)", magic, version)
	}
	threshold := math.Float64frombits(d.u64())
	n := int(d.u32())
	stages := int(d.u16())
	if d.err == nil && n > maxBinaryVectors {
		return nil, fmt.Errorf("core: selection count %d exceeds the binary format limit", n)
	}
	if d.err != nil {
		return nil, d.err
	}
	e := &Enrollment{
		Mode:       Mode(mode),
		Threshold:  threshold,
		Selections: make([]Selection, 0, n),
		Mask:       d.packedBools(n),
	}
	for i := 0; i < n && d.err == nil; i++ {
		flags := d.byte()
		sel := Selection{
			Margin: math.Float64frombits(d.u64()),
			Bit:    flags&2 != 0,
		}
		if flags&1 != 0 {
			if stages == 0 {
				return nil, errors.New("core: selection with zero-length ring configuration")
			}
			sel.X = circuit.Config(d.packedBools(stages))
			sel.Y = circuit.Config(d.packedBools(stages))
		}
		e.Selections = append(e.Selections, sel)
	}
	respLen := int(d.u32())
	if d.err == nil && respLen > maxBinaryVectors {
		return nil, fmt.Errorf("core: response length %d exceeds the binary format limit", respLen)
	}
	if d.err != nil {
		return nil, d.err
	}
	packed := d.bytes((respLen + 7) / 8)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data[d.off:]) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after binary enrollment", len(d.data[d.off:]))
	}
	resp := bits.New(respLen)
	for i := 0; i < respLen; i++ {
		resp.Append(packed[i>>3]&(1<<(i&7)) != 0)
	}
	e.Response = resp
	if err := validateEnrollment(e); err != nil {
		return nil, err
	}
	return e, nil
}

func hasAnyConfig(sels []Selection) bool {
	for _, sel := range sels {
		if sel.X != nil {
			return true
		}
	}
	return false
}

// appendPackedBools appends bs bit-packed LSB-first, ceil(len/8) bytes.
func appendPackedBools(dst []byte, bs []bool) []byte {
	var cur byte
	for i, b := range bs {
		if b {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(bs)&7 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// binCursor is a bounds-checked little-endian reader: the first
// out-of-range read latches err and every later read returns zeros, so
// decode loops stay straight-line and check d.err once.
type binCursor struct {
	data []byte
	off  int
	err  error
}

func (d *binCursor) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.err = errors.New("core: truncated binary enrollment")
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *binCursor) byte() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *binCursor) u16() uint16 {
	b := d.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *binCursor) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *binCursor) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *binCursor) packedBools(n int) []bool {
	packed := d.bytes((n + 7) / 8)
	if d.err != nil {
		return nil
	}
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = packed[i>>3]&(1<<(i&7)) != 0
	}
	return bs
}
