package authserve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ropuf/internal/obs"
	"ropuf/internal/obs/audit"
)

// Per-device security telemetry. The store half (devStats) keeps rolling
// consumption counters next to the device data they describe, updated
// under the shard locks the mutation already holds — O(1) on the hot
// path, no extra locking. The server half (abuseScorer, server.go wiring)
// sweeps those windows into abuse flags.
//
// The rolling window is a ring of telemetryBuckets coarse buckets, each
// TelemetryWindow/telemetryBuckets wide. A write advances the ring to the
// current bucket (zeroing at most the buckets skipped since the last
// write — amortized O(1)) and increments in place; a read sums the
// buckets still inside the window without mutating anything, so read
// paths can stay under RLock. Like the outstanding-challenge table, the
// counters are deliberately memory-only: a restart starts the windows
// empty, and cumulative counts restart at zero (the audit stream is the
// durable record).

// telemetryBuckets is the ring size: window resolution is 1/16 of
// TelemetryWindow, the same coarseness obs.BurnTracker's Window/64
// coalescing accepts.
const telemetryBuckets = 16

type telemetryBucket struct {
	challenges int64
	pairs      int64
	verifies   int64
	fails      int64
}

// devStats is one device's counters: cumulative totals since process
// start plus the rolling ring.
type devStats struct {
	enrolls    int64
	challenges int64
	verifies   int64
	fails      int64
	lastVerify int64 // unix seconds; 0 = never this process

	lastStep int64 // ring position of the most recent write
	ring     [telemetryBuckets]telemetryBucket
}

// bucketStep maps a timestamp to its ring step for a given bucket width.
func bucketStep(t time.Time, width time.Duration) int64 {
	return t.UnixNano() / int64(width)
}

// advance rotates the ring to step s, zeroing buckets for any steps that
// passed with no writes. Cost is min(steps skipped, telemetryBuckets).
func (d *devStats) advance(s int64) {
	if d.lastStep == 0 || s-d.lastStep >= telemetryBuckets {
		d.ring = [telemetryBuckets]telemetryBucket{}
	} else {
		for t := d.lastStep + 1; t <= s; t++ {
			d.ring[t%telemetryBuckets] = telemetryBucket{}
		}
	}
	if s > d.lastStep {
		d.lastStep = s
	}
}

// windowSum sums the buckets whose step is within telemetryBuckets steps
// of now (step s), read-only. Buckets written before the window slid past
// them are excluded by reconstructing each index's step from lastStep.
func (d *devStats) windowSum(s int64) (challenges, pairs, verifies, fails int64) {
	if d.lastStep == 0 {
		return 0, 0, 0, 0
	}
	for i := int64(0); i < telemetryBuckets; i++ {
		t := d.lastStep - ((d.lastStep-i)%telemetryBuckets+telemetryBuckets)%telemetryBuckets
		if t > s-telemetryBuckets && t <= s {
			b := &d.ring[i]
			challenges += b.challenges
			pairs += b.pairs
			verifies += b.verifies
			fails += b.fails
		}
	}
	return challenges, pairs, verifies, fails
}

// statsFor returns (creating if needed) a device's stats record. Caller
// holds the shard write lock.
func (sh *shard) statsFor(id string) *devStats {
	d := sh.stats[id]
	if d == nil {
		d = &devStats{}
		sh.stats[id] = d
	}
	return d
}

// DeviceTelemetry is the cumulative (process-lifetime) per-device counter
// view behind GET /v1/devices/{id}.
type DeviceTelemetry struct {
	Enrolls          int64
	ChallengesIssued int64
	Verifies         int64
	VerifyFails      int64
	LastVerifyUnix   int64 // 0 = never this process
}

// Telemetry returns a device's cumulative counters. Devices with no
// activity this process report zeros.
func (s *Store) Telemetry(id string) DeviceTelemetry {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d := sh.stats[id]
	if d == nil {
		return DeviceTelemetry{}
	}
	return DeviceTelemetry{
		Enrolls:          d.enrolls,
		ChallengesIssued: d.challenges,
		Verifies:         d.verifies,
		VerifyFails:      d.fails,
		LastVerifyUnix:   d.lastVerify,
	}
}

// DeviceWindow is one device's rolling-window consumption snapshot, the
// scorer's input. Every enrolled device gets an entry — idle devices
// report zeros, which is what keeps the fleet median honest when a single
// harvester is the only active device.
type DeviceWindow struct {
	ID         string
	Fresh      int   // pairs still available
	Challenges int64 // challenges issued within the window
	Pairs      int64 // pairs consumed within the window
	Verifies   int64 // verify verdicts within the window
	Fails      int64 // failed verdicts within the window
}

// Windows snapshots every enrolled device's rolling window at time now.
func (s *Store) Windows(now time.Time) []DeviceWindow {
	step := bucketStep(now, s.bucketWidth)
	var out []DeviceWindow
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, id := range sh.v.DeviceIDs() {
			w := DeviceWindow{ID: id}
			w.Fresh, _ = sh.v.NumFresh(id)
			if d := sh.stats[id]; d != nil {
				w.Challenges, w.Pairs, w.Verifies, w.Fails = d.windowSum(step)
			}
			out = append(out, w)
		}
		sh.mu.RUnlock()
	}
	return out
}

// --- abuse scorer -----------------------------------------------------------

// Flag reasons, also the `reason` label of ropuf_authserve_device_flags
// and the audit flag/unflag events.
const (
	FlagHarvest    = "harvest"
	FlagExhaustion = "exhaustion"
)

// AbuseOptions tunes the per-device abuse scorer. The zero value enables
// scoring with the documented defaults (DESIGN.md §12); scoring cannot be
// disabled, only the audit stream is optional.
type AbuseOptions struct {
	// Window is the rolling window rates are computed over; defaults to
	// the store's TelemetryWindow.
	Window time.Duration
	// HarvestRateFactor flags a device whose challenge rate is at least
	// this multiple of the fleet median (idle devices included, so a lone
	// harvester towers over a zero median). Defaults to 8.
	HarvestRateFactor float64
	// MinChallenges is the window challenge count below which the harvest
	// rate rule never fires (absolute floor against tiny-sample flapping).
	// Defaults to 32.
	MinChallenges int64
	// FailRatio flags a device whose windowed verify-fail fraction
	// reaches this value (response guessing). Defaults to 0.5.
	FailRatio float64
	// MinVerifies is the window verify count below which the fail-ratio
	// rule never fires. Defaults to 16.
	MinVerifies int64
	// TTE flags a device whose projected time-to-empty (fresh pairs over
	// windowed drain rate) falls below this. Defaults to 60s.
	TTE time.Duration
	// MinPairs is the window pair consumption below which the exhaustion
	// rule never fires. Defaults to 32.
	MinPairs int64
}

func (o AbuseOptions) withDefaults(window time.Duration) AbuseOptions {
	if o.Window <= 0 {
		o.Window = window
	}
	if o.HarvestRateFactor <= 0 {
		o.HarvestRateFactor = 8
	}
	if o.MinChallenges <= 0 {
		o.MinChallenges = 32
	}
	if o.FailRatio <= 0 {
		o.FailRatio = 0.5
	}
	if o.MinVerifies <= 0 {
		o.MinVerifies = 16
	}
	if o.TTE <= 0 {
		o.TTE = time.Minute
	}
	if o.MinPairs <= 0 {
		o.MinPairs = 32
	}
	return o
}

// FlaggedDevice is one device's open flags, the /v1/audit/flagged wire
// payload (defined here rather than wire.go because it is born in this
// PR's contract).
type FlaggedDevice struct {
	ID        string             `json:"id"`
	Reasons   []string           `json:"reasons"`
	SinceUnix int64              `json:"since_unix"`
	Evidence  map[string]float64 `json:"evidence"`
}

// FlaggedResponse is the GET /v1/audit/flagged body.
type FlaggedResponse struct {
	Window  string          `json:"window"`
	Devices []FlaggedDevice `json:"devices"`
}

// flagState tracks one device's open flags and the hysteresis clock.
type flagState struct {
	reasons  map[string]bool
	since    time.Time
	evidence map[string]float64
	// lastQualify is the most recent sweep at which each reason's
	// evidence still qualified; a reason clears only after one full clean
	// Window beyond this (flap damping: a harvester pausing briefly does
	// not reset its record).
	lastQualify map[string]time.Time
}

// abuseScorer sweeps the store's device windows into flags. Sweeps are
// demand-driven (healthz, /v1/audit/flagged, metrics consumers calling
// Flagged) and rate-limited to Window/32 so polling is cheap; there is no
// background goroutine to drain on shutdown.
type abuseScorer struct {
	store *Store
	opt   AbuseOptions
	audit *audit.Writer
	now   func() time.Time
	// gauge backs ropuf_authserve_device_flags{reason}: open flag counts,
	// refreshed at sweep time (a labelled gauge cannot be read-on-scrape,
	// so the value trails the last health/flagged poll by design).
	gauge *obs.GaugeVec

	mu        sync.Mutex
	lastSweep time.Time
	flags     map[string]*flagState
	byReason  map[string]int // open flag count per reason, mirrors gauge
}

func newAbuseScorer(store *Store, opt AbuseOptions, aw *audit.Writer, gauge *obs.GaugeVec) *abuseScorer {
	return &abuseScorer{
		store: store,
		opt:   opt.withDefaults(store.opt.TelemetryWindow),
		audit: aw,
		// Deref store.now per call: tests swap the store clock after
		// construction and the scorer must follow it.
		now:      func() time.Time { return store.now() },
		gauge:    gauge,
		flags:    map[string]*flagState{},
		byReason: map[string]int{FlagHarvest: 0, FlagExhaustion: 0},
	}
}

// Flagged sweeps (subject to the rate limit unless force is set) and
// returns the open flags sorted by device ID.
func (a *abuseScorer) Flagged(force bool) []FlaggedDevice {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sweepLocked(force)
	out := make([]FlaggedDevice, 0, len(a.flags))
	for id, st := range a.flags {
		fd := FlaggedDevice{ID: id, SinceUnix: st.since.Unix(), Evidence: st.evidence}
		for r := range st.reasons {
			fd.Reasons = append(fd.Reasons, r)
		}
		sort.Strings(fd.Reasons)
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// counts returns the open-flag count per reason (gauge backing).
func (a *abuseScorer) counts() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sweepLocked(false)
	out := make(map[string]int, len(a.byReason))
	for r, n := range a.byReason {
		out[r] = n
	}
	return out
}

// sweepLocked recomputes every device's flags from the store windows.
// Caller holds a.mu.
func (a *abuseScorer) sweepLocked(force bool) {
	now := a.now()
	if !force && !a.lastSweep.IsZero() && now.Sub(a.lastSweep) < a.opt.Window/32 {
		return
	}
	a.lastSweep = now

	windows := a.store.Windows(now)
	winSec := a.opt.Window.Seconds()

	// Fleet median challenge rate over ALL enrolled devices (idle devices
	// count as zero — computing it over active devices only would let a
	// lone harvester define the median). Each device is compared against
	// the median of the OTHER devices: in a small fleet the harvester
	// would otherwise be its own median and never stand out.
	rates := make([]float64, len(windows))
	for i, w := range windows {
		rates[i] = float64(w.Challenges) / winSec
	}
	sort.Float64s(rates)
	medianExcluding := func(r float64) float64 {
		n := len(rates)
		if n <= 1 {
			return 0
		}
		// Median (upper-median convention, index k/2 of k elements) of
		// the sorted rates with one instance of r removed.
		m := (n - 1) / 2
		if sort.SearchFloat64s(rates, r) <= m {
			return rates[m+1]
		}
		return rates[m]
	}

	for _, w := range windows {
		rate := float64(w.Challenges) / winSec
		median := medianExcluding(rate)
		evidence := map[string]float64{
			"challenge_rate":    rate,
			"fleet_median_rate": median,
			"window_pairs":      float64(w.Pairs),
			"fresh":             float64(w.Fresh),
		}

		harvest := w.Challenges >= a.opt.MinChallenges &&
			rate >= a.opt.HarvestRateFactor*median
		if w.Verifies >= a.opt.MinVerifies {
			failRatio := float64(w.Fails) / float64(w.Verifies)
			evidence["fail_ratio"] = failRatio
			harvest = harvest || failRatio >= a.opt.FailRatio
		}

		exhaustion := false
		if drain := float64(w.Pairs) / winSec; w.Pairs >= a.opt.MinPairs && drain > 0 {
			tte := float64(w.Fresh) / drain
			evidence["tte_seconds"] = tte
			exhaustion = tte <= a.opt.TTE.Seconds()
		}

		a.applyLocked(now, w.ID, FlagHarvest, harvest, evidence)
		a.applyLocked(now, w.ID, FlagExhaustion, exhaustion, evidence)
	}
	if a.gauge != nil {
		for reason, n := range a.byReason {
			a.gauge.With(reason).Set(float64(n))
		}
	}
}

// applyLocked moves one (device, reason) through the flag state machine:
// qualify → raise (with an audit event carrying the evidence), stop
// qualifying → clear only after one full clean window.
func (a *abuseScorer) applyLocked(now time.Time, id, reason string, qualifies bool, evidence map[string]float64) {
	st := a.flags[id]
	if qualifies {
		if st == nil {
			st = &flagState{
				reasons:     map[string]bool{},
				since:       now,
				lastQualify: map[string]time.Time{},
			}
			a.flags[id] = st
		}
		st.lastQualify[reason] = now
		st.evidence = evidence
		if !st.reasons[reason] {
			st.reasons[reason] = true
			a.byReason[reason]++
			a.audit.Emit(audit.Event{
				TS: now, Event: audit.EventFlag, DeviceID: id,
				Reason: reason, Detail: evidence,
			})
		}
		return
	}
	if st == nil || !st.reasons[reason] {
		return
	}
	if now.Sub(st.lastQualify[reason]) < a.opt.Window {
		return // hysteresis: hold the flag for one clean window
	}
	delete(st.reasons, reason)
	a.byReason[reason]--
	a.audit.Emit(audit.Event{
		TS: now, Event: audit.EventUnflag, DeviceID: id, Reason: reason,
		Detail: map[string]float64{"clean_seconds": now.Sub(st.lastQualify[reason]).Seconds()},
	})
	if len(st.reasons) == 0 {
		delete(a.flags, id)
	}
}

// healthDetail renders the device_abuse /healthz reason.
func healthDetail(flagged []FlaggedDevice) string {
	ids := make([]string, 0, 3)
	for i, fd := range flagged {
		if i == 3 {
			break
		}
		ids = append(ids, fmt.Sprintf("%s(%s)", fd.ID, joinReasons(fd.Reasons)))
	}
	more := ""
	if len(flagged) > 3 {
		more = fmt.Sprintf(" and %d more", len(flagged)-3)
	}
	return fmt.Sprintf("%d devices flagged for abuse: %s%s", len(flagged), joinReasons(ids), more)
}

func joinReasons(rs []string) string {
	out := ""
	for i, r := range rs {
		if i > 0 {
			out += ","
		}
		out += r
	}
	return out
}
