package authserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ropuf/internal/auth"
	"ropuf/internal/core"
	"ropuf/internal/fleet"
	"ropuf/internal/obs"
	"ropuf/internal/obs/logx"
)

// testFleet fabricates a deterministic device population and the matching
// client-side enrollments (the device's frozen configurations, which the
// prover needs to answer challenges).
func testFleet(t testing.TB, n, pairs int) ([]fleet.Device, []*core.Enrollment) {
	t.Helper()
	devices, err := fleet.Synthetic(n, pairs, 13, 0x5EED)
	if err != nil {
		t.Fatal(err)
	}
	enrs := make([]*core.Enrollment, n)
	for i, d := range devices {
		enr, err := core.Enroll(d.Pairs, core.Case2, 0, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		enrs[i] = enr
	}
	return devices, enrs
}

func enrollBody(d fleet.Device) []byte {
	req := EnrollRequest{ID: d.ID, Mode: "case2"}
	for _, p := range d.Pairs {
		req.Pairs = append(req.Pairs, PairWire{Alpha: p.Alpha, Beta: p.Beta})
	}
	data, _ := json.Marshal(req)
	return data
}

// respond answers a challenge the way the physical device would: evaluate
// the challenged pairs with the frozen configurations against a fresh
// (noisy) measurement.
func respond(t testing.TB, enr *core.Enrollment, pairs []int, fresh []core.Pair) string {
	t.Helper()
	prover := &auth.Prover{Enrollment: enr}
	resp, err := prover.Respond(&auth.Challenge{Pairs: pairs}, fresh)
	if err != nil {
		t.Fatal(err)
	}
	return resp.String()
}

func newTestServer(t testing.TB, sopt StoreOptions, opt ServerOptions) (*Server, *httptest.Server) {
	t.Helper()
	store, err := Open(sopt)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t testing.TB, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func get(t testing.TB, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func mustUnmarshal[T any](t testing.TB, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal %T from %s: %v", v, data, err)
	}
	return v
}

// TestEndToEnd runs the full protocol over HTTP: enroll, inspect, draw a
// challenge, answer it from a noisy re-measurement, verify — then an
// impostor answering with its own silicon is rejected.
func TestEndToEnd(t *testing.T) {
	devices, enrs := testFleet(t, 2, 64)
	alice, mallory := devices[0], devices[1]
	_, ts := newTestServer(t, StoreOptions{Tolerance: 0.15, Seed: 7}, ServerOptions{})
	c := ts.Client()

	code, body := post(t, c, ts.URL+"/v1/enroll", enrollBody(alice))
	if code != http.StatusOK {
		t.Fatalf("enroll: %d %s", code, body)
	}
	er := mustUnmarshal[EnrollResponse](t, body)
	if er.ID != alice.ID || er.Pairs != 64 || er.Bits == 0 || er.Fresh != er.Bits {
		t.Fatalf("enroll response %+v", er)
	}

	code, body = get(t, c, ts.URL+"/v1/devices/"+alice.ID)
	if code != http.StatusOK {
		t.Fatalf("device: %d %s", code, body)
	}
	dr := mustUnmarshal[DeviceResponse](t, body)
	if dr.Fresh != er.Fresh || dr.Outstanding != 0 {
		t.Fatalf("device response %+v", dr)
	}

	chReq, _ := json.Marshal(ChallengeRequest{ID: alice.ID, K: 16})
	code, body = post(t, c, ts.URL+"/v1/challenge", chReq)
	if code != http.StatusOK {
		t.Fatalf("challenge: %d %s", code, body)
	}
	cr := mustUnmarshal[ChallengeResponse](t, body)
	if len(cr.Pairs) != 16 || cr.ChallengeID == "" {
		t.Fatalf("challenge response %+v", cr)
	}

	// Genuine device, noisy re-measurement (2 ps RMS — the realistic
	// counter-noise level of EXPERIMENTS.md).
	fresh := fleet.Remeasure(alice, 2, 0xA11CE)
	vReq, _ := json.Marshal(VerifyRequest{ID: alice.ID, ChallengeID: cr.ChallengeID,
		Response: respond(t, enrs[0], cr.Pairs, fresh)})
	code, body = post(t, c, ts.URL+"/v1/verify", vReq)
	if code != http.StatusOK {
		t.Fatalf("verify: %d %s", code, body)
	}
	vr := mustUnmarshal[VerifyResponse](t, body)
	if !vr.OK || vr.Bits != 16 || vr.Distance > vr.Limit {
		t.Fatalf("genuine device rejected: %+v", vr)
	}

	// Impostor: mallory answers alice's next challenge with her own
	// silicon (even using alice's stolen configurations).
	code, body = post(t, c, ts.URL+"/v1/challenge", chReq)
	if code != http.StatusOK {
		t.Fatalf("challenge 2: %d %s", code, body)
	}
	cr2 := mustUnmarshal[ChallengeResponse](t, body)
	vReq2, _ := json.Marshal(VerifyRequest{ID: alice.ID, ChallengeID: cr2.ChallengeID,
		Response: respond(t, enrs[0], cr2.Pairs, mallory.Pairs)})
	code, body = post(t, c, ts.URL+"/v1/verify", vReq2)
	if code != http.StatusOK {
		t.Fatalf("impostor verify transport: %d %s", code, body)
	}
	if vr2 := mustUnmarshal[VerifyResponse](t, body); vr2.OK {
		t.Fatalf("impostor accepted: %+v", vr2)
	}

	// The two challenges consumed 32 pairs.
	code, body = get(t, c, ts.URL+"/v1/devices/"+alice.ID)
	if code != http.StatusOK {
		t.Fatalf("device after: %d %s", code, body)
	}
	if dr2 := mustUnmarshal[DeviceResponse](t, body); dr2.Fresh != er.Fresh-32 {
		t.Fatalf("fresh after two challenges: %+v (enrolled fresh %d)", dr2, er.Fresh)
	}
}

// TestReplayedChallengeRejected pins the single-use challenge discipline
// at protocol level: a second verify against the same challenge ID fails
// even with a byte-identical correct response.
func TestReplayedChallengeRejected(t *testing.T) {
	devices, enrs := testFleet(t, 1, 32)
	_, ts := newTestServer(t, StoreOptions{Seed: 7}, ServerOptions{})
	c := ts.Client()
	if code, body := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatalf("enroll: %d %s", code, body)
	}
	chReq, _ := json.Marshal(ChallengeRequest{ID: devices[0].ID, K: 8})
	code, body := post(t, c, ts.URL+"/v1/challenge", chReq)
	if code != http.StatusOK {
		t.Fatalf("challenge: %d %s", code, body)
	}
	cr := mustUnmarshal[ChallengeResponse](t, body)
	vReq, _ := json.Marshal(VerifyRequest{ID: devices[0].ID, ChallengeID: cr.ChallengeID,
		Response: respond(t, enrs[0], cr.Pairs, devices[0].Pairs)})
	if code, body := post(t, c, ts.URL+"/v1/verify", vReq); code != http.StatusOK {
		t.Fatalf("first verify: %d %s", code, body)
	}
	code, body = post(t, c, ts.URL+"/v1/verify", vReq)
	if code != http.StatusNotFound {
		t.Fatalf("replayed verify: got %d %s, want 404", code, body)
	}
	if er := mustUnmarshal[ErrorResponse](t, body); !strings.Contains(er.Error, "challenge") {
		t.Fatalf("replay error %q does not mention the challenge", er.Error)
	}
}

// TestUnknownDevice404 covers the not-found paths of all routes.
func TestUnknownDevice404(t *testing.T) {
	_, ts := newTestServer(t, StoreOptions{}, ServerOptions{})
	c := ts.Client()
	if code, body := get(t, c, ts.URL+"/v1/devices/ghost"); code != http.StatusNotFound {
		t.Fatalf("device: %d %s", code, body)
	}
	chReq, _ := json.Marshal(ChallengeRequest{ID: "ghost", K: 8})
	if code, body := post(t, c, ts.URL+"/v1/challenge", chReq); code != http.StatusNotFound {
		t.Fatalf("challenge: %d %s", code, body)
	}
	vReq, _ := json.Marshal(VerifyRequest{ID: "ghost", ChallengeID: "feedbeef", Response: "0101"})
	if code, body := post(t, c, ts.URL+"/v1/verify", vReq); code != http.StatusNotFound {
		t.Fatalf("verify: %d %s", code, body)
	}
}

// TestMalformedRequests400 covers the validation paths: broken JSON on
// every POST route, bad mode, bad response alphabet, non-positive k.
func TestMalformedRequests400(t *testing.T) {
	devices, _ := testFleet(t, 1, 16)
	_, ts := newTestServer(t, StoreOptions{}, ServerOptions{})
	c := ts.Client()
	if code, body := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatalf("enroll: %d %s", code, body)
	}
	for _, route := range []string{"enroll", "challenge", "verify"} {
		code, body := post(t, c, ts.URL+"/v1/"+route, []byte(`{"id": truncated`))
		if code != http.StatusBadRequest {
			t.Fatalf("%s with broken JSON: %d %s", route, code, body)
		}
		if er := mustUnmarshal[ErrorResponse](t, body); er.Error == "" {
			t.Fatalf("%s error body empty", route)
		}
	}
	badMode, _ := json.Marshal(EnrollRequest{ID: "x", Mode: "case3", Pairs: []PairWire{{Alpha: []float64{1}, Beta: []float64{2}}}})
	if code, body := post(t, c, ts.URL+"/v1/enroll", badMode); code != http.StatusBadRequest {
		t.Fatalf("bad mode: %d %s", code, body)
	}
	badK, _ := json.Marshal(ChallengeRequest{ID: devices[0].ID, K: 0})
	if code, body := post(t, c, ts.URL+"/v1/challenge", badK); code != http.StatusBadRequest {
		t.Fatalf("k=0: %d %s", code, body)
	}
	badBits, _ := json.Marshal(VerifyRequest{ID: devices[0].ID, ChallengeID: "x", Response: "01x1"})
	if code, body := post(t, c, ts.URL+"/v1/verify", badBits); code != http.StatusBadRequest {
		t.Fatalf("bad bits: %d %s", code, body)
	}
}

// TestDuplicateEnroll409 pins re-enrollment to 409 Conflict.
func TestDuplicateEnroll409(t *testing.T) {
	devices, _ := testFleet(t, 1, 16)
	_, ts := newTestServer(t, StoreOptions{}, ServerOptions{})
	c := ts.Client()
	if code, _ := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatal("first enroll failed")
	}
	if code, body := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusConflict {
		t.Fatalf("duplicate enroll: %d %s", code, body)
	}
}

// TestExhausted409 drains a device's challenge pool and expects 409.
func TestExhausted409(t *testing.T) {
	devices, _ := testFleet(t, 1, 16)
	_, ts := newTestServer(t, StoreOptions{}, ServerOptions{})
	c := ts.Client()
	if code, _ := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatal("enroll failed")
	}
	chReq, _ := json.Marshal(ChallengeRequest{ID: devices[0].ID, K: 12})
	if code, body := post(t, c, ts.URL+"/v1/challenge", chReq); code != http.StatusOK {
		t.Fatalf("first challenge: %d %s", code, body)
	}
	if code, body := post(t, c, ts.URL+"/v1/challenge", chReq); code != http.StatusConflict {
		t.Fatalf("exhausted challenge: %d %s", code, body)
	}
}

// TestBackpressure429 saturates a 1-inflight, 1-queued server and expects
// the third concurrent request to bounce with 429 + Retry-After while the
// first two eventually succeed.
func TestBackpressure429(t *testing.T) {
	srv, ts := newTestServer(t, StoreOptions{}, ServerOptions{MaxInflight: 1, MaxQueue: 1})
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv.testHookInflight = func(string) {
		entered <- struct{}{}
		<-hold
	}
	c := ts.Client()

	type outcome struct {
		code int
		hdr  string
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := c.Get(ts.URL + "/v1/devices/ghost")
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			resp.Body.Close()
			results <- outcome{code: resp.StatusCode}
		}()
	}
	// Wait until the first request is inside the inflight window; the
	// second sits in the queue (it may or may not have been admitted yet,
	// so give the scheduler a moment to park it).
	<-entered
	time.Sleep(50 * time.Millisecond)

	resp, err := c.Get(ts.URL + "/v1/devices/ghost")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third concurrent request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(hold)
	for i := 0; i < 2; i++ {
		if o := <-results; o.code != http.StatusNotFound {
			t.Fatalf("held request finished with %d, want 404", o.code)
		}
		if i == 0 {
			<-entered // queued request enters the hook after the first releases
		}
	}

	reg := srv.opt.Registry
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `ropuf_authserve_throttled_total{route="device"} 1`) {
		t.Fatalf("throttle counter missing:\n%s", buf.String())
	}
}

// TestGracefulDrain starts a real listener, parks a request in-flight,
// cancels the serve context, and asserts the in-flight request completes
// with 200-class service while the drained server stops accepting new
// connections and Serve returns cleanly.
func TestGracefulDrain(t *testing.T) {
	store, err := Open(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{DrainTimeout: 5 * time.Second})
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.testHookInflight = func(route string) {
		if route == "device" {
			entered <- struct{}{}
			<-hold
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan net.Addr, 1)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ListenAndServe(ctx, "127.0.0.1:0", started) }()
	addr := (<-started).String()
	base := "http://" + addr

	devices, _ := testFleet(t, 1, 16)
	if code, body := post(t, http.DefaultClient, base+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatalf("enroll: %d %s", code, body)
	}

	inflightDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/v1/devices/" + devices[0].ID)
		if err != nil {
			inflightDone <- -1
			return
		}
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	<-entered

	cancel() // SIGINT equivalent: stop accepting, drain in-flight
	// The listener closes promptly; new connections must fail while the
	// in-flight request is still being served.
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after drain started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned before in-flight request finished: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(hold)
	if code := <-inflightDone; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d, want 200", code)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestHealthzOKGolden pins the healthy /healthz contract: 200 with exactly
// {"status":"ok"} (one line). The status string contains "ok" so probes
// that grep the old plain-text body keep passing (DESIGN.md §9).
func TestHealthzOKGolden(t *testing.T) {
	_, ts := newTestServer(t, StoreOptions{}, ServerOptions{})
	code, body := get(t, ts.Client(), ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if string(body) != "{\"status\":\"ok\"}\n" {
		t.Fatalf("/healthz body = %q, want {\"status\":\"ok\"}", body)
	}
}

// TestHealthzDegradeAndRecover is the SLO acceptance path: a 429 storm
// against a saturated server flips /healthz to 503 with a machine-readable
// error_budget_burn reason, and once the errors age out of the (short)
// window /healthz recovers to 200 — without restarting anything.
func TestHealthzDegradeAndRecover(t *testing.T) {
	srv, ts := newTestServer(t, StoreOptions{}, ServerOptions{
		MaxInflight: 1, MaxQueue: 1,
		SLO:            obs.SLO{Objective: 0.99, Window: 300 * time.Millisecond},
		MaxBurnRate:    10,
		MinSLORequests: 5,
	})
	hold := make(chan struct{})
	entered := make(chan struct{}, 2)
	srv.testHookInflight = func(string) {
		entered <- struct{}{}
		<-hold
	}
	c := ts.Client()

	// Park one request inflight and one in the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Get(ts.URL + "/v1/devices/ghost")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-entered
	time.Sleep(50 * time.Millisecond) // let the second request park in the queue

	// Storm: with the queue full, every request bounces with 429 instantly.
	for i := 0; i < 20; i++ {
		resp, err := c.Get(ts.URL + "/v1/devices/ghost")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("storm request %d: %d, want 429", i, resp.StatusCode)
		}
	}

	code, body := get(t, c, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during storm = %d %s, want 503", code, body)
	}
	rep := mustUnmarshal[obs.HealthReport](t, body)
	if rep.Status != "degraded" {
		t.Fatalf("degraded status = %q", rep.Status)
	}
	reasonCodes := map[string]bool{}
	for _, r := range rep.Reasons {
		reasonCodes[r.Code] = true
		if r.Detail == "" {
			t.Fatalf("reason %s without detail", r.Code)
		}
	}
	if !reasonCodes["error_budget_burn"] {
		t.Fatalf("degraded reasons = %+v, want error_budget_burn", rep.Reasons)
	}

	// Release the parked requests and wait out the window: health recovers.
	close(hold)
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = get(t, c, ts.URL+"/healthz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never recovered: %d %s", code, body)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestTraceparentStitching is the cross-process acceptance path in
// miniature: a request carrying a W3C traceparent header produces server
// spans that join the caller's trace (same trace ID, server root parented
// to the client span), with the store child under the route span, and the
// request log line stamped with the same trace ID.
func TestTraceparentStitching(t *testing.T) {
	ring := obs.NewRingSink(64)
	logBuf := &lockedBuffer{}
	_, ts := newTestServer(t, StoreOptions{}, ServerOptions{
		Tracer: obs.NewTracer(ring, obs.WithService("authserve")),
		Logger: logx.New(logBuf, slog.LevelDebug),
	})

	const (
		traceID      = "4bf92f3577b34da6a3ce929d0e0e4736"
		clientSpanID = "00f067aa0ba902b7"
	)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/devices/ghost", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, "00-"+traceID+"-"+clientSpanID+"-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The span/log emission happens just after the handler writes the
	// response, so wait for the spans to land rather than racing them.
	byName := map[string]obs.SpanEvent{}
	deadline := time.Now().Add(2 * time.Second)
	for len(byName) < 3 {
		byName = map[string]obs.SpanEvent{}
		for _, ev := range ring.Events() {
			byName[ev.Name] = ev
		}
		if len(byName) < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("spans never landed: %v", byName)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	root, ok := byName["authserve.device"]
	if !ok {
		t.Fatalf("no route span emitted: %v", byName)
	}
	if root.TraceID != traceID || root.ParentID != clientSpanID {
		t.Fatalf("server root trace %q parent %q, want %q/%q",
			root.TraceID, root.ParentID, traceID, clientSpanID)
	}
	if root.Service != "authserve" {
		t.Fatalf("service = %q", root.Service)
	}
	if q := byName["authserve.queue"]; q.TraceID != traceID || q.ParentID != root.ID {
		t.Fatalf("queue span %+v not a child of the route span", q)
	}
	if st := byName["store.device"]; st.TraceID != traceID || st.ParentID != root.ID {
		t.Fatalf("store span %+v not a child of the route span", st)
	}

	// The request log line carries the same trace for log↔trace pivoting.
	// It is emitted just after the route span ends, so poll for it too.
	var logged map[string]any
	for logged == nil {
		for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
			if line == "" {
				continue
			}
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("log line %q: %v", line, err)
			}
			if m["msg"] == "request" {
				logged = m
			}
		}
		if logged == nil {
			if time.Now().After(deadline) {
				t.Fatalf("no request log record in %q", logBuf.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if logged["trace_id"] != traceID {
		t.Fatalf("log trace_id = %v, want %s", logged["trace_id"], traceID)
	}
	if logged["route"] != "device" || logged["code"] != float64(http.StatusNotFound) {
		t.Fatalf("request record = %v", logged)
	}

	// Without a traceparent header the server roots a fresh trace.
	resp2, err := ts.Client().Get(ts.URL + "/v1/devices/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	fresh := obs.SpanEvent{}
	deadline = time.Now().Add(2 * time.Second)
	for fresh.ID == "" {
		for _, ev := range ring.Events() {
			if ev.Name == "authserve.device" && ev.TraceID != traceID {
				fresh = ev
			}
		}
		if fresh.ID == "" {
			if time.Now().After(deadline) {
				t.Fatal("headerless request span never landed")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if fresh.ParentID != "" {
		t.Fatalf("headerless request did not root a fresh trace: %+v", fresh)
	}
}

// lockedBuffer is an io.Writer safe for concurrent use: the handler's log
// emission can race the test's read when the response flushes first.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHardenedServeTimeouts pins that the listener path applies the shared
// obs.HardenServer settings (slowloris hardening).
func TestHardenedServeTimeouts(t *testing.T) {
	store, err := Open(StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOptions{})
	hs := srv.httpServer()
	if hs.ReadHeaderTimeout != 5*time.Second || hs.ReadTimeout != 30*time.Second || hs.IdleTimeout != 2*time.Minute {
		t.Fatalf("timeouts = %v/%v/%v", hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout)
	}
}

// TestMetricsExposition pins the acceptance-criterion metric: after one
// round trip, /metrics exposes ropuf_authserve_request_duration_seconds
// with route and code labels for every touched route.
func TestMetricsExposition(t *testing.T) {
	devices, enrs := testFleet(t, 1, 32)
	_, ts := newTestServer(t, StoreOptions{Seed: 3}, ServerOptions{})
	c := ts.Client()
	if code, _ := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatal("enroll failed")
	}
	chReq, _ := json.Marshal(ChallengeRequest{ID: devices[0].ID, K: 8})
	_, body := post(t, c, ts.URL+"/v1/challenge", chReq)
	cr := mustUnmarshal[ChallengeResponse](t, body)
	vReq, _ := json.Marshal(VerifyRequest{ID: devices[0].ID, ChallengeID: cr.ChallengeID,
		Response: respond(t, enrs[0], cr.Pairs, devices[0].Pairs)})
	post(t, c, ts.URL+"/v1/verify", vReq)
	get(t, c, ts.URL+"/v1/devices/"+devices[0].ID)

	code, body := get(t, c, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`ropuf_authserve_request_duration_seconds_count{route="enroll",code="200"}`,
		`ropuf_authserve_request_duration_seconds_count{route="challenge",code="200"}`,
		`ropuf_authserve_request_duration_seconds_count{route="verify",code="200"}`,
		`ropuf_authserve_request_duration_seconds_count{route="device",code="200"}`,
		`ropuf_authserve_requests_total{route="verify",code="200"} 1`,
		`ropuf_authserve_devices 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestWALStalledHealthAndPersistErrors pins the serving contract around a
// stuck log: a mutation whose WAL append fails answers 500 (server fault,
// retryable) — not the 400 the old default error mapping produced —
// /healthz flips to 503 with a wal_stalled reason, and once appends
// succeed again and the failures age out of the window the endpoint
// recovers to 200.
func TestWALStalledHealthAndPersistErrors(t *testing.T) {
	devices, _ := testFleet(t, 2, 8)
	srv, ts := newTestServer(t,
		StoreOptions{Dir: t.TempDir(), Shards: 1, CompactBytes: -1},
		ServerOptions{SLO: obs.SLO{Window: 300 * time.Millisecond}})
	c := ts.Client()
	if code, body := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatalf("healthy enroll = %d %s", code, body)
	}

	sh := srv.store.shards[0]
	sh.mu.Lock()
	sh.wal.failAppends = true
	sh.mu.Unlock()
	code, body := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[1]))
	if code != http.StatusInternalServerError {
		t.Fatalf("enroll with stuck WAL = %d %s, want 500", code, body)
	}
	code, body = get(t, c, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "wal_stalled") {
		t.Fatalf("/healthz with stuck WAL = %d %s, want 503 wal_stalled", code, body)
	}

	// Unstick the log: the failed enroll retries cleanly (the rollback
	// satellite — no 409 from a ghost enrollment) and health recovers.
	sh.mu.Lock()
	sh.wal.failAppends = false
	sh.mu.Unlock()
	if code, body := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[1])); code != http.StatusOK {
		t.Fatalf("retry after WAL recovery = %d %s", code, body)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		code, body = get(t, c, ts.URL+"/healthz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never recovered after WAL unstuck: %d %s", code, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStatsEndpoint: the route table mounts the flight recorder at GET
// /v1/stats, so operators get rate/quantile history from the same port
// that serves /metrics.
func TestStatsEndpoint(t *testing.T) {
	devices, _ := testFleet(t, 1, 32)
	srv, ts := newTestServer(t, StoreOptions{Seed: 11}, ServerOptions{})
	c := ts.Client()
	if code, _ := post(t, c, ts.URL+"/v1/enroll", enrollBody(devices[0])); code != http.StatusOK {
		t.Fatal("enroll failed")
	}
	// Handler() alone never starts the tick loop (Serve does); drive the
	// recorder by hand so the test is deterministic.
	srv.Recorder().Sample()

	code, body := get(t, c, ts.URL+"/v1/stats?series=ropuf_authserve_devices")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: %d %s", code, body)
	}
	text := string(body)
	if !strings.Contains(text, `"name":"ropuf_authserve_devices"`) ||
		!strings.Contains(text, ",1]") {
		t.Fatalf("/v1/stats missing enrolled-device history:\n%s", text)
	}
	if code, _ := post(t, c, ts.URL+"/v1/stats", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats answered %d, want 405", code)
	}
}

// TestShardDeviceGauges: enrollments surface as per-shard device counts,
// both live and after recovery from disk.
func TestShardDeviceGauges(t *testing.T) {
	devices, _ := testFleet(t, 4, 16)
	dir := t.TempDir()
	// Store and server share one registry, as the serve command wires them.
	shared := obs.NewRegistry()
	sopt := StoreOptions{Seed: 5, Shards: 4, Dir: dir, Registry: shared}
	_, ts := newTestServer(t, sopt, ServerOptions{Registry: shared})
	c := ts.Client()
	for _, d := range devices {
		if code, _ := post(t, c, ts.URL+"/v1/enroll", enrollBody(d)); code != http.StatusOK {
			t.Fatal("enroll failed")
		}
	}
	sum := func(text string) int {
		total := 0
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, "ropuf_authserve_shard_devices{") {
				continue
			}
			var shard string
			var n int
			if _, err := fmt.Sscanf(line, `ropuf_authserve_shard_devices{shard="%4s"} %d`, &shard, &n); err != nil {
				t.Fatalf("unparseable shard gauge line %q: %v", line, err)
			}
			total += n
		}
		return total
	}
	_, body := get(t, c, ts.URL+"/metrics")
	if got := sum(string(body)); got != len(devices) {
		t.Fatalf("live shard gauges sum to %d, want %d:\n%s", got, len(devices), body)
	}

	// Reopen from disk: the gauges must be rebuilt from recovered state,
	// not start at zero.
	reg := obs.NewRegistry()
	sopt.Registry = reg
	restored, err := Open(sopt)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if got := sum(b.String()); got != len(devices) {
		t.Fatalf("recovered shard gauges sum to %d, want %d:\n%s", got, len(devices), b.String())
	}
}
