package core

import (
	"testing"

	"ropuf/internal/rngx"
)

func randVec(r *rngx.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 200 + 5*r.Norm()
	}
	return v
}

func selectionsEqual(a, b Selection) bool {
	if a.Margin != b.Margin || a.Bit != b.Bit || len(a.X) != len(b.X) || len(a.Y) != len(b.Y) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return false
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	return true
}

// TestScratchSelectionMatchesPlain runs the scratch-backed selection paths
// with one long-lived Scratch against the public entry points (fresh
// buffers each call) over random inputs, modes, and options. Results must
// be identical — buffer reuse is invisible to the algorithm.
func TestScratchSelectionMatchesPlain(t *testing.T) {
	r := rngx.New(0x5C)
	var sc Scratch
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(24)
		alpha := randVec(r, n)
		beta := randVec(r, n)
		opt := Options{RequireOddStages: trial%2 == 0}
		for _, mode := range []Mode{Case1, Case2} {
			want, errWant := Select(mode, alpha, beta, opt)
			got, errGot := selectWith(mode, alpha, beta, opt, &sc)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("trial %d %v: error mismatch: %v vs %v", trial, mode, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if !selectionsEqual(want, got) {
				t.Fatalf("trial %d %v odd=%v: scratch selection diverged:\n got X=%s Y=%s margin=%g\nwant X=%s Y=%s margin=%g",
					trial, mode, opt.RequireOddStages, got.X, got.Y, got.Margin, want.X, want.Y, want.Margin)
			}
		}
	}
}

// TestScratchConfigsIndependent verifies configuration vectors carved from a
// shared Scratch arena never alias: mutating one selection's vectors must
// not disturb another's.
func TestScratchConfigsIndependent(t *testing.T) {
	r := rngx.New(0x1D)
	var sc Scratch
	const n = 9
	alpha1, beta1 := randVec(r, n), randVec(r, n)
	alpha2, beta2 := randVec(r, n), randVec(r, n)
	s1, err := selectCase2(alpha1, beta1, Options{}, &sc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SelectCase2(alpha1, beta1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := selectCase2(alpha2, beta2, Options{}, &sc)
	if err != nil {
		t.Fatal(err)
	}
	// Scribble over the second selection's vectors...
	for i := range s2.X {
		s2.X[i] = !s2.X[i]
		s2.Y[i] = !s2.Y[i]
	}
	// ...and the first must be untouched.
	if !selectionsEqual(s1, ref) {
		t.Fatal("mutating a later selection's configs corrupted an earlier selection from the same Scratch")
	}
	// Appending to a carved config must not grow into the arena either.
	grown := append(s1.X, true)
	if &grown[0] == &s1.X[0] {
		t.Fatal("append grew a carved config in place; full-slice expression missing")
	}
}

// TestEnrollWithMatchesEnroll verifies the scratch-backed enrollment is
// observationally identical to the plain one.
func TestEnrollWithMatchesEnroll(t *testing.T) {
	r := rngx.New(0xE7)
	for trial := 0; trial < 20; trial++ {
		pairs := make([]Pair, 16)
		for i := range pairs {
			pairs[i] = Pair{Alpha: randVec(r, 12), Beta: randVec(r, 12)}
		}
		mode := Case1
		if trial%2 == 1 {
			mode = Case2
		}
		var sc Scratch
		want, errWant := Enroll(pairs, mode, 3.0, Options{})
		got, errGot := EnrollWith(&sc, pairs, mode, 3.0, Options{})
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if want.Response.String() != got.Response.String() {
			t.Fatalf("trial %d: responses differ: %s vs %s", trial, want.Response, got.Response)
		}
		for i := range want.Selections {
			if want.Mask[i] != got.Mask[i] {
				t.Fatalf("trial %d pair %d: mask differs", trial, i)
			}
			if !selectionsEqual(want.Selections[i], got.Selections[i]) {
				t.Fatalf("trial %d pair %d: selections differ", trial, i)
			}
		}
	}
}

// TestSelectionScratchAllocsAmortized pins the allocation behaviour the
// fleet hot path relies on: with a warm Scratch, a Case-2 selection's only
// allocations are the amortized arena blocks (well under one per call).
func TestSelectionScratchAllocsAmortized(t *testing.T) {
	r := rngx.New(0xA11)
	const n = 15
	alpha, beta := randVec(r, n), randVec(r, n)
	var sc Scratch
	if _, err := selectCase2(alpha, beta, Options{}, &sc); err != nil {
		t.Fatal(err) // warm the index buffers and the first arena block
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := selectCase2(alpha, beta, Options{}, &sc); err != nil {
			t.Fatal(err)
		}
	})
	// 2n bools per call out of arenaBlockBools-sized blocks → ~1 block per
	// 68 calls at n=15. Anything ≥1 alloc/call means per-call buffers came
	// back.
	if avg >= 1 {
		t.Fatalf("warm Case-2 selection averaged %v allocs/call, want amortized <1", avg)
	}
	if _, err := selectCase1(alpha, beta, Options{}, &sc); err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(200, func() {
		if _, err := selectCase1(alpha, beta, Options{}, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 1 {
		t.Fatalf("warm Case-1 selection averaged %v allocs/call, want amortized <1", avg)
	}
}
