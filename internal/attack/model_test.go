package attack

import (
	"testing"

	"ropuf/internal/rngx"
)

func truthPair(seed uint64, n int) (alpha, beta []float64) {
	r := rngx.New(seed)
	return randomVectors(r, n)
}

func TestGenerateCRPsConsistentWithGroundTruth(t *testing.T) {
	alpha, beta := truthPair(1, 8)
	crps, err := GenerateCRPs(alpha, beta, 200, rngx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(crps) != 200 {
		t.Fatalf("got %d CRPs, want 200", len(crps))
	}
	for k, crp := range crps {
		if crp.X.Ones() == 0 || crp.Y.Ones() == 0 {
			t.Fatalf("CRP %d has an empty configuration", k)
		}
		var d float64
		for i := range alpha {
			if crp.X[i] {
				d += alpha[i]
			}
			if crp.Y[i] {
				d -= beta[i]
			}
		}
		if (d > 0) != crp.Bit {
			t.Fatalf("CRP %d bit inconsistent with ground truth", k)
		}
	}
}

func TestGenerateCRPsValidation(t *testing.T) {
	if _, err := GenerateCRPs(nil, nil, 10, rngx.New(1)); err == nil {
		t.Fatal("empty vectors accepted")
	}
	a, b := truthPair(3, 4)
	if _, err := GenerateCRPs(a, b, 0, rngx.New(1)); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := GenerateCRPs(a, b[:2], 5, rngx.New(1)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestLinearModelLearnsPair(t *testing.T) {
	alpha, beta := truthPair(4, 13)
	crps, err := GenerateCRPs(alpha, beta, 1500, rngx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewLinearModel(13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Train(crps[:1000], 200); err != nil {
		t.Fatal(err)
	}
	acc, err := model.Accuracy(crps[1000:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("trained model accuracy %.3f, expected >= 0.9 (linear target)", acc)
	}
}

func TestLinearModelUntrainedIsChance(t *testing.T) {
	alpha, beta := truthPair(6, 9)
	crps, err := GenerateCRPs(alpha, beta, 1000, rngx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewLinearModel(9)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := model.Accuracy(crps)
	if err != nil {
		t.Fatal(err)
	}
	// Zero weights always predict "false"; accuracy equals the base rate,
	// which is near 0.5 for symmetric vectors.
	if acc < 0.3 || acc > 0.7 {
		t.Fatalf("untrained accuracy %.3f far from chance", acc)
	}
}

func TestLinearModelMoreDataHelps(t *testing.T) {
	alpha, beta := truthPair(8, 13)
	crps, err := GenerateCRPs(alpha, beta, 2200, rngx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	eval := crps[2000:]
	accFor := func(train int) float64 {
		m, err := NewLinearModel(13)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(crps[:train], 100); err != nil {
			t.Fatal(err)
		}
		a, err := m.Accuracy(eval)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	small := accFor(16)
	large := accFor(2000)
	if large < small {
		t.Fatalf("more training data hurt: %.3f -> %.3f", small, large)
	}
	if large < 0.9 {
		t.Fatalf("large-sample accuracy %.3f too low", large)
	}
}

func TestLinearModelValidation(t *testing.T) {
	if _, err := NewLinearModel(0); err == nil {
		t.Fatal("zero stages accepted")
	}
	m, err := NewLinearModel(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(nil, 10); err == nil {
		t.Fatal("empty training set accepted")
	}
	alpha, beta := truthPair(10, 4)
	crps, err := GenerateCRPs(alpha, beta, 4, rngx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(crps, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := m.Accuracy(nil); err == nil {
		t.Fatal("empty evaluation set accepted")
	}
	// Mismatched model/config size.
	m8, _ := NewLinearModel(8)
	if _, err := m8.Train(crps, 5); err == nil {
		t.Fatal("CRP length mismatch accepted")
	}
	if _, err := m8.Predict(crps[0].X, crps[0].Y); err == nil {
		t.Fatal("Predict length mismatch accepted")
	}
}
