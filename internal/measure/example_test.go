package measure_test

import (
	"fmt"
	"log"

	"ropuf/internal/circuit"
	"ropuf/internal/measure"
	"ropuf/internal/rngx"
	"ropuf/internal/silicon"
)

// ExampleMeter_Ddiffs shows the paper's §III.B protocol: per-stage delay
// differences recovered from whole-ring leave-one-out measurements — no
// single inverter is ever probed.
func ExampleMeter_Ddiffs() {
	die, err := silicon.NewDie(silicon.DefaultParams(), 8, 8, rngx.New(7))
	if err != nil {
		log.Fatal(err)
	}
	ring, err := circuit.NewBuilder(die).BuildRing(3, circuit.DefaultMuxScale, circuit.DefaultWireScale)
	if err != nil {
		log.Fatal(err)
	}
	meter := measure.NewMeter(silicon.Nominal, rngx.New(8))
	meter.NoisePS = 0 // noiseless for a reproducible example

	ddiffs, err := meter.Ddiffs(ring)
	if err != nil {
		log.Fatal(err)
	}
	truth := ring.TrueDdiffsPS(silicon.Nominal)
	for i := range ddiffs {
		fmt.Printf("stage %d: measured %.2f ps, truth %.2f ps\n", i, ddiffs[i], truth[i])
	}
	// Output:
	// stage 0: measured 227.60 ps, truth 227.60 ps
	// stage 1: measured 228.73 ps, truth 228.73 ps
	// stage 2: measured 212.04 ps, truth 212.04 ps
}
