package benchfmt

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ropuf
BenchmarkFleetEnrollSerial-8     	      10	  11908132 ns/op	 4455648 B/op	   53632 allocs/op
BenchmarkFleetEnroll8Workers-8   	      10	   3102938 ns/op	 4460160 B/op	   53650 allocs/op
BenchmarkFleetEvaluate8Workers   	       5	   2000000 ns/op
PASS
ok  	ropuf	1.234s
`

func TestParse(t *testing.T) {
	var echo strings.Builder
	results, err := Parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sample {
		t.Fatal("input not echoed through verbatim")
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(results), results)
	}
	serial, ok := results["BenchmarkFleetEnrollSerial"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", results)
	}
	if serial.Iterations != 10 || serial.NsPerOp != 11908132 || serial.BytesPerOp != 4455648 || serial.AllocsPerOp != 53632 {
		t.Fatalf("serial = %+v", serial)
	}
	eval := results["BenchmarkFleetEvaluate8Workers"]
	if eval.NsPerOp != 2000000 || eval.BytesPerOp != 0 {
		t.Fatalf("eval = %+v (no-benchmem line misparsed)", eval)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	results := map[string]Result{
		"BenchmarkB": {Iterations: 1, NsPerOp: 2},
		"BenchmarkA": {Iterations: 3, NsPerOp: 4, AllocsPerOp: 5},
	}
	data, err := Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("invalid JSON:\n%s", data)
	}
	if strings.Index(string(data), "BenchmarkA") > strings.Index(string(data), "BenchmarkB") {
		t.Fatalf("keys not sorted:\n%s", data)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["BenchmarkA"].AllocsPerOp != 5 {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
}

// TestLineRoundTrip pins that a rendered Line parses back to the same
// Result — loadgen emits Lines, benchjson Parses them.
func TestLineRoundTrip(t *testing.T) {
	in := Result{Iterations: 4096, NsPerOp: 812345}
	line := in.Line("BenchmarkLoadgenVerify")
	parsed, err := Parse(strings.NewReader(line+"\n"), &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := parsed["BenchmarkLoadgenVerify"]
	if !ok {
		t.Fatalf("line %q did not parse: %v", line, parsed)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip: got %+v, want %+v", got, in)
	}
}

// TestParseCustomUnits pins that B.ReportMetric units land in Extra — the
// dataset benchmarks publish boards/s and bytes/board this way — and that
// they survive Line rendering and JSON marshalling.
func TestParseCustomUnits(t *testing.T) {
	const line = "BenchmarkStreamVT-8\t5\t240000000 ns/op\t512 B/op\t3 allocs/op\t41.5 boards/s\t35840 bytes/board\n"
	results, err := Parse(strings.NewReader(line), &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	got := results["BenchmarkStreamVT"]
	if got.NsPerOp != 240000000 || got.BytesPerOp != 512 || got.AllocsPerOp != 3 {
		t.Fatalf("standard units misparsed: %+v", got)
	}
	want := map[string]float64{"boards/s": 41.5, "bytes/board": 35840}
	if !reflect.DeepEqual(got.Extra, want) {
		t.Fatalf("Extra = %v, want %v", got.Extra, want)
	}

	reparsed, err := Parse(strings.NewReader(got.Line("BenchmarkStreamVT")+"\n"), &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reparsed["BenchmarkStreamVT"].Extra, want) {
		t.Fatalf("Line round trip lost extras: %+v", reparsed["BenchmarkStreamVT"])
	}

	data, err := Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded["BenchmarkStreamVT"].Extra, want) {
		t.Fatalf("JSON round trip lost extras:\n%s", data)
	}
}
