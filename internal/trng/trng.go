// Package trng implements a ring-oscillator true random number generator —
// the other security primitive the paper's abstract lists PUFs being used
// for ("secret key storage, random number generation, …"), built on the
// same configurable-ring substrate.
//
// Physical basis: a free-running ring accumulates phase jitter (thermal
// noise adds an i.i.d. timing error to every transition). Sampling the
// ring's cycle-count parity with an independent slow clock yields a bit
// whose unpredictability grows with the jitter accumulated between samples:
// once the accumulated σ exceeds about half a period, the parity is
// essentially a fair coin. With too-short sampling intervals the bits are
// strongly biased and periodic — the classic failure mode the entropy and
// NIST checks in this repository detect.
//
// The package also provides the two standard light-weight conditioners:
// von Neumann debiasing and k-fold XOR compression.
package trng

import (
	"errors"
	"fmt"
	"math"

	"ropuf/internal/bits"
	"ropuf/internal/circuit"
	"ropuf/internal/rngx"
	"ropuf/internal/silicon"
)

// Generator samples one configurable ring's cycle parity.
type Generator struct {
	// SamplePS is the sampling clock interval in picoseconds.
	SamplePS float64
	// JitterPerCyclePS is the RMS timing noise added per oscillation
	// period (thermal jitter). FPGA ROs show a few ps per cycle.
	JitterPerCyclePS float64

	period float64 // ring period under the fixed config/env
	// phase is the ring's absolute accumulated time modulo period, in ps,
	// including all jitter so far.
	phase float64
	rng   *rngx.RNG
}

// New builds a generator from a ring under a fixed configuration and
// environment. samplePS is the sampling interval; jitterPS the per-cycle
// RMS jitter; rng drives the simulated thermal noise.
func New(r *circuit.Ring, cfg circuit.Config, env silicon.Env, samplePS, jitterPS float64, rng *rngx.RNG) (*Generator, error) {
	if samplePS <= 0 {
		return nil, fmt.Errorf("trng: sampling interval must be positive, got %g", samplePS)
	}
	if jitterPS < 0 {
		return nil, fmt.Errorf("trng: negative jitter %g", jitterPS)
	}
	if rng == nil {
		return nil, errors.New("trng: nil RNG")
	}
	period, err := r.PeriodPS(cfg, env)
	if err != nil {
		return nil, err
	}
	if samplePS < period {
		return nil, fmt.Errorf("trng: sampling interval %g ps below ring period %g ps", samplePS, period)
	}
	return &Generator{
		SamplePS:         samplePS,
		JitterPerCyclePS: jitterPS,
		period:           period,
		rng:              rng,
	}, nil
}

// PeriodPS returns the ring period the generator samples.
func (g *Generator) PeriodPS() float64 { return g.period }

// AccumulatedSigmaPS returns the RMS jitter accumulated over one sampling
// interval: σ_c·√(cycles per sample). Entropy per raw bit is high once this
// approaches period/2.
func (g *Generator) AccumulatedSigmaPS() float64 {
	cycles := g.SamplePS / g.period
	return g.JitterPerCyclePS * math.Sqrt(cycles)
}

// Bit advances one sampling interval and returns the ring's cycle-count
// parity.
func (g *Generator) Bit() bool {
	// Time advanced by the ring during this sample: nominal interval plus
	// the jitter accumulated over ~SamplePS/period cycles (Gaussian with
	// √cycles scaling — a random walk of per-cycle errors).
	jitter := g.rng.NormMeanStd(0, g.AccumulatedSigmaPS())
	g.phase += g.SamplePS + jitter
	cycles := math.Floor(g.phase / g.period)
	g.phase -= cycles * g.period
	if g.phase < 0 { // extreme negative jitter swing
		g.phase += g.period
		cycles--
	}
	return int64(cycles)%2 != 0
}

// Bits draws n raw bits.
func (g *Generator) Bits(n int) *bits.Stream {
	s := bits.New(n)
	for i := 0; i < n; i++ {
		s.Append(g.Bit())
	}
	return s
}

// VonNeumann debiases a stream: non-overlapping bit pairs map 01→0, 10→1,
// and 00/11 are discarded. Output length is data-dependent (≈ n·p(1−p)).
func VonNeumann(s *bits.Stream) *bits.Stream {
	out := bits.New(s.Len() / 4)
	for i := 0; i+1 < s.Len(); i += 2 {
		a, b := s.Bit(i), s.Bit(i+1)
		if a != b {
			out.Append(b)
		}
	}
	return out
}

// XORFold compresses the stream k-to-1 by XOR-ing each group of k bits,
// multiplying the per-bit entropy (bias ε becomes ~2^(k−1)·ε^k).
func XORFold(s *bits.Stream, k int) (*bits.Stream, error) {
	if k <= 0 {
		return nil, fmt.Errorf("trng: fold factor must be positive, got %d", k)
	}
	out := bits.New(s.Len() / k)
	for i := 0; i+k <= s.Len(); i += k {
		v := false
		for j := 0; j < k; j++ {
			v = v != s.Bit(i+j)
		}
		out.Append(v)
	}
	return out, nil
}
