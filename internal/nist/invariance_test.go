package nist

// Invariance properties of the statistical tests: transformations of the
// input with known effects on the statistics.

import (
	"math"
	"testing"
	"testing/quick"

	"ropuf/internal/bits"
	"ropuf/internal/rngx"
)

func complementOf(s *bits.Stream) *bits.Stream {
	out := bits.New(s.Len())
	for i := 0; i < s.Len(); i++ {
		out.Append(!s.Bit(i))
	}
	return out
}

func reverseOf(s *bits.Stream) *bits.Stream {
	out := bits.New(s.Len())
	for i := s.Len() - 1; i >= 0; i-- {
		out.Append(s.Bit(i))
	}
	return out
}

func quickStream(seed uint64, n int) *bits.Stream {
	r := rngx.New(seed)
	s := bits.New(n)
	for i := 0; i < n; i++ {
		s.Append(r.Bool())
	}
	return s
}

func pvClose(a, b []PV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].P-b[i].P) > 1e-9 {
			return false
		}
	}
	return true
}

func TestFrequencyComplementInvariant(t *testing.T) {
	// |S_n| is unchanged when every bit flips.
	check := func(seed uint64) bool {
		s := quickStream(seed, 256)
		a, err1 := FrequencyTest().Run(s)
		b, err2 := FrequencyTest().Run(complementOf(s))
		return err1 == nil && err2 == nil && pvClose(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunsComplementInvariant(t *testing.T) {
	// The number of runs is identical for a sequence and its complement.
	check := func(seed uint64) bool {
		s := quickStream(seed, 256)
		a, err1 := RunsTest().Run(s)
		b, err2 := RunsTest().Run(complementOf(s))
		return err1 == nil && err2 == nil && pvClose(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunsReverseInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		s := quickStream(seed, 256)
		a, err1 := RunsTest().Run(s)
		b, err2 := RunsTest().Run(reverseOf(s))
		return err1 == nil && err2 == nil && pvClose(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCusumReversalSwapsDirections(t *testing.T) {
	// The forward cusum statistic of the reversed sequence is the backward
	// statistic of the original.
	check := func(seed uint64) bool {
		s := quickStream(seed, 256)
		a, err1 := CumulativeSumsTest().Run(s)
		b, err2 := CumulativeSumsTest().Run(reverseOf(s))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a[0].P-b[1].P) < 1e-9 && math.Abs(a[1].P-b[0].P) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerialCyclicShiftInvariant(t *testing.T) {
	// Serial counts patterns cyclically, so any rotation preserves them.
	check := func(seed uint64, shiftSel uint8) bool {
		s := quickStream(seed, 200)
		shift := int(shiftSel) % s.Len()
		rot := bits.New(s.Len())
		for i := 0; i < s.Len(); i++ {
			rot.Append(s.Bit((i + shift) % s.Len()))
		}
		a, err1 := SerialTest(3).Run(s)
		b, err2 := SerialTest(3).Run(rot)
		return err1 == nil && err2 == nil && pvClose(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproximateEntropyComplementInvariant(t *testing.T) {
	// Pattern-frequency entropy is invariant under global complement
	// (pattern histogram is permuted, entropy unchanged).
	check := func(seed uint64) bool {
		s := quickStream(seed, 200)
		a, err1 := ApproximateEntropyTest(2).Run(s)
		b, err2 := ApproximateEntropyTest(2).Run(complementOf(s))
		return err1 == nil && err2 == nil && pvClose(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDFTComplementInvariant(t *testing.T) {
	// Complementing flips the sign of every ±1 sample; magnitudes of the
	// spectrum are unchanged.
	check := func(seed uint64) bool {
		s := quickStream(seed, 128)
		a, err1 := DFTTest().Run(s)
		b, err2 := DFTTest().Run(complementOf(s))
		return err1 == nil && err2 == nil && pvClose(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternCountsSumToN(t *testing.T) {
	check := func(seed uint64, mSel uint8) bool {
		n := 64 + int(seed%128)
		m := 1 + int(mSel%6)
		s := quickStream(seed, n)
		counts := patternCounts(s, m)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
