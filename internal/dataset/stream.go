package dataset

import (
	"context"
	"fmt"
	"sync"

	"ropuf/internal/fleet"
	"ropuf/internal/measure"
	"ropuf/internal/rngx"
)

// StreamVT generates the VT dataset one board at a time, invoking fn with
// each board in ID order. Unlike GenerateVT it never materializes the
// corpus: the only live state is the board currently being fabricated and
// measured, so memory is constant in the board count and the paper-scale
// 198-board corpus — or a 10k-board fleet — streams straight to disk. The
// board sequence is bit-identical to GenerateVT at the same configuration
// (GenerateVT is StreamVT plus an accumulator; the equivalence battery in
// stream_test.go pins it).
//
// The *Board passed to fn is owned by fn: StreamVT never reuses it, so
// callbacks may retain boards (at the cost of the memory bound).
func StreamVT(cfg VTConfig, fn func(*Board) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	return streamVT(context.Background(), cfg, rngx.New(cfg.Seed), fn)
}

// streamVT is StreamVT over an explicit root generator and context; the
// golden test drives it directly to pin the post-generation root state.
func streamVT(ctx context.Context, cfg VTConfig, root *rngx.RNG, fn func(*Board) error) error {
	bm := measure.NewBoardMeter(cfg.NoiseMHz)
	for id := 0; id < cfg.NumBoards; id++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dataset: stream cancelled: %w", err)
		}
		brng := root.Split()
		board, err := generateVTBoard(cfg, id, id >= cfg.NumBoards-cfg.NumEnvBoards, brng, bm)
		if err != nil {
			return fmt.Errorf("dataset: board %d: %w", id, err)
		}
		if err := fn(board); err != nil {
			return err
		}
	}
	return nil
}

// streamResult carries one generated board from a worker to the in-order
// emitter.
type streamResult struct {
	idx   int
	board *Board
	err   error
}

// StreamVTParallel is StreamVT with board fabrication fanned out over a
// bounded worker pool (fleet.Dispatch). Per-board RNG seeds are drawn
// serially in dispatch order through the prepare hook, so the emitted
// board sequence — order and bits — is identical to StreamVT regardless of
// worker count or scheduling. fn is always invoked from the calling
// goroutine, in board-ID order, with completed boards held in a reorder
// window bounded by the worker count (dispatch is window-throttled, so
// memory stays constant in the board count even when one board runs slow).
// workers <= 1 degrades to the serial generator.
func StreamVTParallel(ctx context.Context, cfg VTConfig, workers int, fn func(*Board) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		return streamVT(ctx, cfg, rngx.New(cfg.Seed), fn)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	root := rngx.New(cfg.Seed)
	n := cfg.NumBoards

	// The prepare hook draws seeds in strictly increasing board order (the
	// serial Split stream) and throttles dispatch to the reorder window:
	// a board is only handed to a worker once fewer than `window` boards
	// are dispatched-but-unemitted, which bounds worker-side buffering.
	window := 2*workers + 2
	tokens := make(chan struct{}, window)
	var seedMu sync.Mutex
	seeds := make(map[int]uint64, window)
	prepare := func(idx int) {
		select {
		case tokens <- struct{}{}:
		case <-ctx.Done():
			return
		}
		seedMu.Lock()
		seeds[idx] = root.SplitSeed()
		seedMu.Unlock()
	}

	results := make(chan streamResult, window)
	meters := make([]*measure.BoardMeter, workers)
	for i := range meters {
		meters[i] = measure.NewBoardMeter(cfg.NoiseMHz)
	}
	run := func(worker, idx int) {
		seedMu.Lock()
		seed, ok := seeds[idx]
		delete(seeds, idx)
		seedMu.Unlock()
		if !ok {
			// prepare was cancelled before drawing this seed; the dispatch
			// loop is about to stop, drop the job.
			return
		}
		board, err := generateVTBoard(cfg, idx, idx >= n-cfg.NumEnvBoards, rngx.New(seed), meters[worker])
		if err != nil {
			err = fmt.Errorf("dataset: board %d: %w", idx, err)
		}
		select {
		case results <- streamResult{idx: idx, board: board, err: err}:
		case <-ctx.Done():
		}
	}

	var dispatchErr error
	go func() {
		dispatchErr = fleet.Dispatch(ctx, n, workers, prepare, run)
		close(results)
	}()

	pending := make(map[int]streamResult, window)
	next := 0
	var emitErr error
	for r := range results {
		pending[r.idx] = r
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			select {
			case <-tokens:
			default:
			}
			if emitErr != nil {
				continue // drain so workers never block on a full channel
			}
			if cur.err != nil {
				emitErr = cur.err
				cancel()
				continue
			}
			if err := fn(cur.board); err != nil {
				emitErr = err
				cancel()
			}
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if dispatchErr != nil {
		return dispatchErr
	}
	if next != n {
		return fmt.Errorf("dataset: stream emitted %d of %d boards", next, n)
	}
	return nil
}
