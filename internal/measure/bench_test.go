package measure

import (
	"fmt"
	"testing"

	"ropuf/internal/circuit"
	"ropuf/internal/rngx"
	"ropuf/internal/silicon"
)

// benchRing builds a ring big enough for the requested stage count
// (3 devices per stage plus the enable gate).
func benchRing(b *testing.B, stages int) *circuit.Ring {
	b.Helper()
	side := 1
	for side*side < 3*stages+1 {
		side++
	}
	die, err := silicon.NewDie(silicon.DefaultParams(), side, side, rngx.New(uint64(stages)))
	if err != nil {
		b.Fatal(err)
	}
	r, err := circuit.NewBuilder(die).BuildRing(stages, circuit.DefaultMuxScale, circuit.DefaultWireScale)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

var benchSizes = []int{16, 64, 256}

// BenchmarkDdiffsNaive measures the direct leave-one-out protocol: n+1
// whole-ring evaluations, each recomputing every device's alpha-power-law
// environment factors (the pre-optimization cost model).
func BenchmarkDdiffsNaive(b *testing.B) {
	for _, stages := range benchSizes {
		b.Run(fmt.Sprintf("stages=%d", stages), func(b *testing.B) {
			r := benchRing(b, stages)
			m := NewMeter(silicon.Nominal, rngx.New(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.DdiffsNaive(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDdiffsFast measures the incremental protocol: stage delays
// tabulated once off the cached environment table, leave-one-out
// half-periods derived from the all-selected total.
func BenchmarkDdiffsFast(b *testing.B) {
	for _, stages := range benchSizes {
		b.Run(fmt.Sprintf("stages=%d", stages), func(b *testing.B) {
			r := benchRing(b, stages)
			m := NewMeter(silicon.Nominal, rngx.New(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Ddiffs(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPairDdiffs measures the enrollment-facing entry point (two rings
// per PUF pair) on the incremental path.
func BenchmarkPairDdiffs(b *testing.B) {
	const stages = 64
	die, err := silicon.NewDie(silicon.DefaultParams(), 20, 20, rngx.New(2))
	if err != nil {
		b.Fatal(err)
	}
	builder := circuit.NewBuilder(die)
	top, err := builder.BuildRing(stages, circuit.DefaultMuxScale, circuit.DefaultWireScale)
	if err != nil {
		b.Fatal(err)
	}
	bottom, err := builder.BuildRing(stages, circuit.DefaultMuxScale, circuit.DefaultWireScale)
	if err != nil {
		b.Fatal(err)
	}
	m := NewMeter(silicon.Nominal, rngx.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.PairDdiffs(top, bottom); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoardMeter measures whole-board batch measurement (the VT
// dataset's hot loop): one pinned env table + one NormFill per board,
// zero warm allocations. boards/s is the fleet-scale throughput figure.
func BenchmarkBoardMeter(b *testing.B) {
	for _, grid := range [][2]int{{16, 16}, {16, 32}} {
		b.Run(fmt.Sprintf("ros=%d", grid[0]*grid[1]), func(b *testing.B) {
			p := silicon.DefaultParams()
			p.NominalDelayPS = 5208
			die, err := silicon.NewDie(p, grid[0], grid[1], rngx.New(0xB0A2D))
			if err != nil {
				b.Fatal(err)
			}
			bm := NewBoardMeter(0.01)
			rng := rngx.New(7)
			dst := make([]float64, die.NumDevices())
			env := silicon.Env{V: 1.08, T: 45}
			if _, err := bm.MeasureInto(dst, die, env, rng); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bm.MeasureInto(dst, die, env, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "boards/s")
		})
	}
}
