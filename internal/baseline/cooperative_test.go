package baseline

import (
	"testing"

	"ropuf/internal/rngx"
)

func TestCooperativeKeepsStablePairs(t *testing.T) {
	// Pair 0 stable (10 > 5 everywhere); pair 1 flips at corner 1.
	corners := [][]float64{
		{10, 5, 7, 8},
		{11, 6, 9, 8.5},
		{12, 7, 7.2, 8.1},
	}
	e, err := EnrollCooperative(corners)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Mask[0] {
		t.Fatal("stable pair dropped")
	}
	if e.Mask[1] {
		t.Fatal("unstable pair kept")
	}
	if e.Response.Len() != 1 || !e.Response.Bit(0) {
		t.Fatalf("response = %s, want single 1", e.Response)
	}
	if e.Utilization() != 0.5 {
		t.Fatalf("utilization = %g, want 0.5", e.Utilization())
	}
}

func TestCooperativeSingleCornerKeepsAll(t *testing.T) {
	e, err := EnrollCooperative([][]float64{{3, 1, 2, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Response.Len() != 2 {
		t.Fatalf("bits = %d, want 2", e.Response.Len())
	}
	if e.Response.String() != "10" {
		t.Fatalf("response = %s, want 10", e.Response)
	}
}

func TestCooperativeDropsTies(t *testing.T) {
	e, err := EnrollCooperative([][]float64{{5, 5, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Mask[0] {
		t.Fatal("tied pair kept")
	}
	if e.Response.Len() != 1 {
		t.Fatalf("bits = %d, want 1", e.Response.Len())
	}
}

func TestCooperativeValidation(t *testing.T) {
	if _, err := EnrollCooperative(nil); err == nil {
		t.Fatal("empty corner list accepted")
	}
	if _, err := EnrollCooperative([][]float64{{1}}); err == nil {
		t.Fatal("single RO accepted")
	}
	if _, err := EnrollCooperative([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("ragged corners accepted")
	}
	// All pairs unstable → error.
	if _, err := EnrollCooperative([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("zero stable pairs accepted")
	}
}

func TestCooperativeEvaluate(t *testing.T) {
	corners := [][]float64{{10, 5, 7, 8}, {11, 6, 9, 8.5}}
	e, err := EnrollCooperative(corners)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Evaluate(corners[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Equal(e.Response) {
		t.Fatal("re-evaluation at the reference corner changed bits")
	}
	if _, err := e.Evaluate([]float64{1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("wrong RO count accepted")
	}
}

func TestCooperativeBeatsWorstCaseThreshold(t *testing.T) {
	// On random delays with corner perturbations, cooperative enrollment
	// keeps more pairs than a worst-case threshold tuned for the same
	// stability, because it tests stability directly.
	r := rngx.New(9)
	const nROs = 256
	base := make([]float64, nROs)
	for i := range base {
		base[i] = 10000 + 50*r.Norm()
	}
	corners := [][]float64{base}
	for c := 0; c < 4; c++ {
		shift := make([]float64, nROs)
		for i := range shift {
			shift[i] = base[i]*1.1 + 15*r.Norm()
		}
		corners = append(corners, shift)
	}
	coop, err := EnrollCooperative(corners)
	if err != nil {
		t.Fatal(err)
	}
	// Worst-case threshold needs margin > max perturbation ≈ 4σ·√2 ≈ 85.
	trad, err := EnrollTraditional(base, 85)
	if err != nil {
		t.Fatal(err)
	}
	if coop.Response.Len() <= trad.Response.Len() {
		t.Fatalf("cooperative %d bits not above worst-case-threshold %d bits",
			coop.Response.Len(), trad.Response.Len())
	}
}
